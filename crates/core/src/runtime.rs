//! The runtime: configuration, worker threads, task life cycle.
//!
//! [`Runtime::new`] builds the configured dependency system, scheduler
//! and allocator and spawns `workers - 1` worker threads (the caller of
//! [`Runtime::run`] acts as worker 0, which matches the paper's
//! single-creator application pattern: the main task creates the work
//! while the other cores consume it).
//!
//! The per-configuration presets map one-to-one onto the §6.2 ablations:
//! [`RuntimeConfig::optimized`], [`RuntimeConfig::without_jemalloc`],
//! [`RuntimeConfig::without_waitfree_deps`],
//! [`RuntimeConfig::without_dtlock`], plus the §6.3 OpenMP-style
//! work-stealing comparators.

use core::alloc::Layout;
use core::cell::RefCell;
use parking_lot::Mutex;
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nanotask_alloc::{AllocStats, AllocatorKind, RuntimeAllocator, TaskSlab, make_allocator};
use nanotask_locks::Backoff;
use nanotask_obs::{
    Counter, FlightFrame, FlightRecorder, Gauge, Histogram, MaxGauge, Registry, Snapshot,
};
use nanotask_trace::noise::{NoiseConfig, NoiseInjector};
use nanotask_trace::{CoreRecorder, EventKind, Trace, Tracer};

use crate::deps::access::DataAccess;
use crate::deps::{DepHooks, DependencySystem, Deps, DepsKind, make_deps};
use crate::graph::{EdgeKind, GraphEdge};
use crate::platform::Platform;
use crate::sched::{Policy, SchedKind, Scheduler, TaskPtr, make_scheduler};
use crate::task::{Task, TaskBody, TaskId, TaskState};

/// Observer of task spawns issued by the *root* task — the hook the
/// record & replay subsystem (`nanotask-replay`) uses to capture a task
/// graph without the runtime knowing anything about replay.
///
/// Installed with [`Runtime::set_spawn_capture`]. While [`SpawnCapture::active`]
/// returns true, every `spawn`/`spawn_labeled`/`spawn_prioritized` call
/// made by the root task body is first offered to [`SpawnCapture::on_spawn`]:
///
/// * returning `Some((deps, body))` lets the spawn proceed normally
///   (record mode — the capture noted the metadata and handed the parts
///   back);
/// * returning `None` consumes the spawn (replay mode — the capture
///   took ownership of the body and schedules it by other means, e.g.
///   [`TaskCtx::spawn_held`], which it may call from inside `on_spawn`
///   through the provided `ctx`).
///
/// Spawns from non-root tasks (nested parallelism) and internal spawns
/// (`taskwait_on`) are never offered to the capture.
///
/// The runtime only ever invokes these methods from the thread that is
/// executing the root task body, so implementations may keep their hot
/// state thread-confined.
pub trait SpawnCapture: Send + Sync {
    /// Whether spawns should currently be offered to this capture.
    fn active(&self) -> bool;

    /// Offer one root spawn. See the trait docs for the return contract.
    fn on_spawn(
        &self,
        ctx: &TaskCtx,
        label: &'static str,
        priority: i32,
        deps: Deps,
        body: TaskBody,
    ) -> Option<(Deps, TaskBody)>;

    /// The task id the (non-consumed) spawn ended up with — lets a
    /// recorder correlate captured nodes with dependency-graph edges.
    fn on_spawned(&self, _id: TaskId) {}
}

/// Post-body hook of a held task ([`TaskCtx::spawn_held_with_epilogue`]):
/// runs on the executing worker immediately after the task's body
/// returns, before the completion protocol. This is the replay engine's
/// steady-state seam — the per-iteration successor-release logic lives
/// in one shared object referenced by every task of the iteration (one
/// `Arc` clone per task), instead of a freshly boxed wrapper closure per
/// task per iteration. `tag` is caller-chosen (the replay engine passes
/// the graph node index).
pub trait TaskEpilogue: Send + Sync {
    /// Run the hook for the task tagged `tag`.
    fn run(&self, ctx: &TaskCtx, tag: u64);
}

/// Handle to a task created by [`TaskCtx::spawn_held`]: the task is
/// fully created but *held* — it is handed to the scheduler only when
/// [`TaskCtx::release_held`] is called on the handle, exactly once.
///
/// The raw pointer is only valid until the task executes; see
/// [`HeldTask::into_raw`] for the safety contract of round-tripping it.
/// `repr(transparent)` so a `&[HeldTask]` batch can be handed to the
/// scheduler as `&[TaskPtr]` without copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct HeldTask(*mut Task);

unsafe impl Send for HeldTask {}
unsafe impl Sync for HeldTask {}

impl HeldTask {
    /// The raw task pointer, e.g. for storing in an `AtomicPtr` slot.
    pub fn into_raw(self) -> *mut Task {
        self.0
    }

    /// Rebuild a handle from [`HeldTask::into_raw`].
    ///
    /// # Safety
    /// `p` must come from `into_raw` of a handle whose task has not yet
    /// been released (a held task stays alive until released + executed).
    pub unsafe fn from_raw(p: *mut Task) -> Self {
        Self(p)
    }

    /// Transfer a cancellation mark onto the held task before releasing
    /// it: the body will be skipped, while the completion protocol
    /// (countdowns, taskwaits, reclamation) still runs. The replay
    /// engine uses this to mirror the dependency systems' failure
    /// poisoning onto frozen-graph successors.
    pub fn mark_cancelled(&self) {
        // SAFETY: the handle owns a live, unreleased task.
        unsafe { (*self.0).mark_cancelled() };
    }
}

/// Deterministic fault-injection plan ([`RuntimeConfig::with_fault_plan`]).
///
/// Faults are injected at the top of the task-body `catch_unwind` scope,
/// so an injected panic exercises exactly the same isolation, failure
/// recording and cancellation propagation paths as a real body panic.
/// Only *eligible* bodies tick the injection counter: the root task and
/// internal `taskwait_on` helper tasks are skipped, and when
/// [`FaultPlan::panic_in_worker`] is set only bodies executing on that
/// worker count. The counter resets at the start of every
/// [`Runtime::run_outcome`], so `panic_at_nth` means "the nth eligible
/// body of this run" — fully deterministic whenever body execution order
/// is (serialized chains, or a single worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the derived selections (delay injection).
    pub seed: u64,
    /// Panic in the nth eligible task body of the run (0-based).
    pub panic_at_nth: Option<u64>,
    /// Restrict the injection counter to bodies executing on this worker.
    pub panic_in_worker: Option<usize>,
    /// Busy-delay injected into a seed-derived ~1/8 of eligible bodies
    /// (jitter amplification for schedule-perturbation testing);
    /// 0 disables.
    pub delay_ns: u64,
}

impl FaultPlan {
    /// A plan that panics in the nth eligible task body (0-based).
    pub fn panic_at(n: u64) -> Self {
        Self {
            seed: 0,
            panic_at_nth: Some(n),
            panic_in_worker: None,
            delay_ns: 0,
        }
    }

    /// A plan that never fires — every injection check still runs, so
    /// this measures the full bookkeeping overhead of an armed plan
    /// (the `fig19_chaos` no-fault-overhead row).
    pub fn never() -> Self {
        Self {
            seed: 0,
            panic_at_nth: None,
            panic_in_worker: None,
            delay_ns: 0,
        }
    }

    /// Restrict the injection counter to worker `w`.
    pub fn in_worker(mut self, w: usize) -> Self {
        self.panic_in_worker = Some(w);
        self
    }

    /// Set the selection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the injected busy-delay (0 disables).
    pub fn with_delay_ns(mut self, ns: u64) -> Self {
        self.delay_ns = ns;
        self
    }
}

/// Message prefix of panics raised by the fault injector. A process-wide
/// panic hook (installed once, the first time a runtime with a
/// [`FaultPlan`] is built) suppresses the default stderr backtrace spew
/// for payloads carrying this prefix — injected faults are expected and
/// reported through [`RunOutcome`], not the console. All other panics
/// pass through to the previously installed hook untouched. Tests that
/// plant their own panics can reuse the prefix for quiet output.
pub const FAULT_PANIC_PREFIX: &str = "nanotask fault injection";

/// Runtime configuration: the complete §6 ablation space.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Total workers (including the thread that calls `run`).
    pub workers: usize,
    /// NUMA nodes for SPSC add-buffer partitioning.
    pub numa_nodes: usize,
    /// Scheduler implementation.
    pub sched: SchedKind,
    /// Dependency system implementation.
    pub deps: DepsKind,
    /// Allocator implementation.
    pub alloc: AllocatorKind,
    /// Ready-queue ordering policy.
    pub policy: Policy,
    /// Capacity of each SPSC add buffer (Listing 5 uses 100).
    pub spsc_capacity: usize,
    /// Record trace events.
    pub trace: bool,
    /// Record dependency edges (Figure 1 graph dump).
    pub record_graph: bool,
    /// Synthetic OS-noise injection (Figure 11).
    pub noise: Option<NoiseConfig>,
    /// Immediate-successor execution: a completing task keeps one of the
    /// successors it released as its worker's next task, run inline with
    /// no queue and no lock (the zero-queue hot path; Nanos6 ships the
    /// same fast path). Off by default — enabling it trades strict
    /// global queue ordering (and, under [`Policy::Priority`], strict
    /// priority order) for a shorter per-task critical path.
    pub inline_successors: bool,
    /// Bound on consecutive inline executions before the worker must go
    /// back through the scheduler — preserves fairness and guarantees
    /// taskwait loops re-check their condition at bounded intervals.
    pub inline_max_depth: usize,
    /// Batched release: all successors released by one task completion
    /// are handed to the scheduler as a single slice (one lock
    /// acquisition / buffer pass / trace record). Off by default.
    pub batched_release: bool,
    /// Per-worker pop-cache capacity of the delegation scheduler: one
    /// delegation-lock acquisition pre-pops up to this many extra tasks
    /// for the acquiring worker. 0 (default) disables the cache.
    pub pop_cache: usize,
    /// Frozen replay graphs the replay engine keeps, LRU-keyed by
    /// structural hash (`nanotask-replay`'s `GraphCache`). Values > 1
    /// let phase-alternating iterative bodies (miniAMR-style
    /// refine/coarsen cycles) replay every phase instead of re-recording
    /// on each alternation; 1 reproduces the original single-graph
    /// engine byte for byte (divergence discards the graph and blindly
    /// re-records).
    pub replay_cache_size: usize,
    /// After this many *consecutive* iterations that could not replay
    /// (record or divergence), the replay engine pins the body to the
    /// dependency system and stops recording. 0 disables the give-up
    /// policy. Ignored when `replay_cache_size` is 1.
    pub replay_giveup_after: usize,
    /// While pinned, every this-many iterations the engine runs one
    /// cheap hash-only probe (no graph build) to detect that the body
    /// re-stabilized onto a cached or repeating shape. Ignored when
    /// `replay_cache_size` is 1.
    pub replay_recheck_every: usize,
    /// NUMA-aware replay partitioning: partition every frozen replay
    /// graph across the runtime's NUMA nodes and route each released
    /// batch to its partition's node via the scheduler's node-targeted
    /// insertion, turning replay into a locality-aware static schedule.
    /// Like the zero-queue fast path, this trades strict global queue
    /// ordering (and, under [`crate::sched::Policy::Priority`], strict
    /// priority order) for placement: routed tasks are served FIFO per
    /// node ahead of the global policy queue. Off by default — every
    /// path is byte-identical with the knob off.
    pub replay_partitioning: bool,
    /// Retained reference data path of the replay engine (the pre-CSR
    /// "PR 4" steady state): node-by-node counter reset instead of the
    /// template memcpy, the full-frontier-rescan partitioner instead of
    /// the score heap (and no eviction-seed reuse), and no
    /// inline-successor routing composition. Behavior is identical —
    /// only the per-iteration cost differs. Exists for the differential
    /// conformance suite and as the `fig16_replay_hotloop` baseline;
    /// leave off otherwise.
    pub replay_compat: bool,
    /// Latency histograms (task execution time, ready-queue wait,
    /// release-batch size): sampled clock reads on the hot path when on.
    /// Plain counters are registry-backed and always on regardless —
    /// this knob only gates the paths that need a timestamp.
    pub metrics: bool,
    /// Histogram sampling interval: one timed task per this many
    /// (per worker), rounded up to a power of two so the hot-path
    /// sample check is a mask instead of a division. 1 times every task.
    pub metrics_sample: usize,
    /// Flight-recorder snapshot interval in executed tasks (and replay
    /// iterations); 0 disables the recorder.
    pub flight_every: u64,
    /// Snapshots the flight-recorder ring retains.
    pub flight_capacity: usize,
    /// Stall watchdog: when set, a monitor thread trips after tasks have
    /// been pending with no completed body for this long, failing the
    /// run with a [`FailureKind::WatchdogStall`] diagnostic (flight
    /// snapshot + queue depths) instead of hanging forever. `None`
    /// (default) disables the monitor entirely — no extra thread.
    pub watchdog: Option<std::time::Duration>,
    /// Deterministic fault injection ([`FaultPlan`]); `None` (default)
    /// removes every injection check from the body hot path.
    pub fault_plan: Option<FaultPlan>,
    /// Name shown by benchmark harnesses.
    pub label: &'static str,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

impl RuntimeConfig {
    /// The fully-optimized runtime: wait-free dependencies, delegation
    /// scheduler, pooled allocator — the paper's "optimized" curve.
    pub fn optimized() -> Self {
        Self {
            workers: 4,
            numa_nodes: 1,
            sched: SchedKind::Delegation,
            deps: DepsKind::WaitFree,
            alloc: AllocatorKind::Pool,
            policy: Policy::Fifo,
            spsc_capacity: 100,
            trace: false,
            record_graph: false,
            noise: None,
            inline_successors: false,
            inline_max_depth: 64,
            batched_release: false,
            pop_cache: 0,
            replay_cache_size: 4,
            replay_giveup_after: 8,
            replay_recheck_every: 16,
            replay_partitioning: false,
            replay_compat: false,
            metrics: false,
            metrics_sample: 32,
            flight_every: 0,
            flight_capacity: 64,
            watchdog: None,
            fault_plan: None,
            label: "optimized",
        }
    }

    /// Ablation: serialized system allocator ("w/o jemalloc").
    pub fn without_jemalloc() -> Self {
        Self {
            alloc: AllocatorKind::Serialized,
            label: "w/o jemalloc",
            ..Self::optimized()
        }
    }

    /// Ablation: fine-grained-locking dependency system
    /// ("w/o wait-free dependencies").
    pub fn without_waitfree_deps() -> Self {
        Self {
            deps: DepsKind::Locking,
            label: "w/o wait-free dependencies",
            ..Self::optimized()
        }
    }

    /// Ablation: PTLock-protected central scheduler ("w/o DTLock").
    pub fn without_dtlock() -> Self {
        Self {
            sched: SchedKind::Central(crate::sched::LockKind::PtLock),
            label: "w/o DTLock",
            ..Self::optimized()
        }
    }

    /// §8 future work, implemented: the optimized runtime with the
    /// flat-combining DTLock serve path (batched waiter service).
    pub fn flat_combining() -> Self {
        Self {
            sched: SchedKind::DelegationFlat,
            label: "flat combining",
            ..Self::optimized()
        }
    }

    /// §6.3 comparator: work-stealing runtime in the style of the LLVM /
    /// Intel OpenMP runtimes (local LIFO, steal oldest).
    pub fn openmp_llvm_like() -> Self {
        Self {
            sched: SchedKind::WorkSteal(crate::sched::WsVariant::LifoLocal),
            deps: DepsKind::Locking,
            alloc: AllocatorKind::Pool,
            label: "LLVM-like (worksteal)",
            ..Self::optimized()
        }
    }

    /// §6.3 comparator: GOMP-style work-stealing (local FIFO), with the
    /// serializing allocator GOMP effectively has through glibc malloc.
    pub fn openmp_gcc_like() -> Self {
        Self {
            sched: SchedKind::WorkSteal(crate::sched::WsVariant::FifoLocal),
            deps: DepsKind::Locking,
            alloc: AllocatorKind::System,
            label: "GCC-like (worksteal)",
            ..Self::optimized()
        }
    }

    /// Set total worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Set NUMA-node count.
    pub fn numa(mut self, n: usize) -> Self {
        self.numa_nodes = n.max(1);
        self
    }

    /// Apply a platform profile (workers + NUMA nodes).
    pub fn platform(mut self, p: Platform) -> Self {
        self.workers = p.cores.max(1);
        self.numa_nodes = p.numa_nodes.max(1);
        self
    }

    /// Enable tracing.
    pub fn tracing(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable dependency-graph recording.
    pub fn graph(mut self, on: bool) -> Self {
        self.record_graph = on;
        self
    }

    /// Enable synthetic OS noise.
    pub fn with_noise(mut self, cfg: NoiseConfig) -> Self {
        self.noise = Some(cfg);
        self
    }

    /// Select the scheduler.
    pub fn scheduler(mut self, kind: SchedKind) -> Self {
        self.sched = kind;
        self
    }

    /// Select the dependency system.
    pub fn dependency_system(mut self, kind: DepsKind) -> Self {
        self.deps = kind;
        self
    }

    /// Select the allocator.
    pub fn allocator(mut self, kind: AllocatorKind) -> Self {
        self.alloc = kind;
        self
    }

    /// Set the ready-queue policy.
    pub fn with_policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    /// Toggle the whole zero-queue fast path at once: immediate-successor
    /// inline execution + batched ready-task release + a small per-worker
    /// pop cache. This is the knob the `fig13_inline_succ` ablation
    /// flips; everything defaults to off.
    pub fn fast_path(mut self, on: bool) -> Self {
        self.inline_successors = on;
        self.batched_release = on;
        self.pop_cache = if on { 4 } else { 0 };
        self
    }

    /// Toggle immediate-successor inline execution only.
    pub fn with_inline_successors(mut self, on: bool) -> Self {
        self.inline_successors = on;
        self
    }

    /// Set the inline-chain depth bound (min 1).
    pub fn with_inline_max_depth(mut self, n: usize) -> Self {
        self.inline_max_depth = n.max(1);
        self
    }

    /// Toggle batched ready-task release only.
    pub fn with_batched_release(mut self, on: bool) -> Self {
        self.batched_release = on;
        self
    }

    /// Set the delegation scheduler's per-worker pop-cache capacity
    /// (0 disables).
    pub fn with_pop_cache(mut self, n: usize) -> Self {
        self.pop_cache = n;
        self
    }

    /// Set the replay engine's frozen-graph cache capacity (min 1;
    /// 1 = the original single-graph engine with no hysteresis).
    pub fn with_replay_cache_size(mut self, n: usize) -> Self {
        self.replay_cache_size = n.max(1);
        self
    }

    /// Set how many consecutive non-replayed iterations make the replay
    /// engine give up and pin the body to the dependency system
    /// (0 = never give up).
    pub fn with_replay_giveup_after(mut self, n: usize) -> Self {
        self.replay_giveup_after = n;
        self
    }

    /// Set the pinned-mode re-stabilization probe interval (min 1).
    pub fn with_replay_recheck_every(mut self, n: usize) -> Self {
        self.replay_recheck_every = n.max(1);
        self
    }

    /// Toggle NUMA-aware replay partitioning (see
    /// [`RuntimeConfig::replay_partitioning`]; off by default). Only
    /// affects `run_iterative` — plain `run` never partitions.
    pub fn with_replay_partitioning(mut self, on: bool) -> Self {
        self.replay_partitioning = on;
        self
    }

    /// Set the NUMA-node count (alias of [`RuntimeConfig::numa`], the
    /// spelling the partitioning knobs use).
    pub fn with_numa_nodes(self, n: usize) -> Self {
        self.numa(n)
    }

    /// Toggle the replay engine's retained reference data path (see
    /// [`RuntimeConfig::replay_compat`]; off by default). Differential
    /// tests and the `fig16_replay_hotloop` baseline only.
    pub fn with_replay_compat(mut self, on: bool) -> Self {
        self.replay_compat = on;
        self
    }

    /// Toggle the latency histograms (see [`RuntimeConfig::metrics`];
    /// off by default — counters stay on either way).
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Set the histogram sampling interval (min 1 = time every task;
    /// rounded up to a power of two).
    pub fn with_metrics_sample(mut self, n: usize) -> Self {
        self.metrics_sample = n.max(1);
        self
    }

    /// Enable the in-run flight recorder: snapshot the registry every
    /// `every` executed tasks (or replay iterations), keeping the last
    /// `capacity` snapshots. `every = 0` disables it.
    pub fn with_flight_recorder(mut self, every: u64, capacity: usize) -> Self {
        self.flight_every = every;
        self.flight_capacity = capacity.max(1);
        self
    }

    /// Arm the stall watchdog (see [`RuntimeConfig::watchdog`]): fail a
    /// run with a diagnostic after `timeout` of pending-but-stalled
    /// tasks instead of hanging.
    pub fn with_watchdog(mut self, timeout: std::time::Duration) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Install a deterministic fault-injection plan (see [`FaultPlan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the NUMA-node count from the environment/host
    /// ([`crate::platform::Topology::detect`]): `NANOTASK_NUMA_NODES`
    /// when set, a deterministic host-parallelism-based fallback
    /// otherwise.
    pub fn with_detected_numa(self) -> Self {
        let nodes = crate::platform::Topology::detect(self.workers).nodes();
        self.numa(nodes)
    }

    /// The four §6.2 ablation configurations, in paper order.
    pub fn ablations() -> Vec<RuntimeConfig> {
        vec![
            Self::optimized(),
            Self::without_jemalloc(),
            Self::without_waitfree_deps(),
            Self::without_dtlock(),
        ]
    }
}

/// Everything a harness needs to make a per-run performance claim
/// machine-checkable: the aggregate runtime counters plus the scheduler
/// operation counters and the zero-queue fast-path counters. Returned by
/// [`Runtime::run_report`]; counters are cumulative across a runtime's
/// lifetime (diff two reports to isolate one run).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Task life-cycle and allocator counters.
    pub stats: RuntimeStats,
    /// Scheduler operation counters (adds, batch adds, pops, pop-cache
    /// hits, lock acquisitions, node-targeted adds).
    pub sched: crate::sched::SchedOpStats,
    /// Per-NUMA-node insertion counters (one entry per node; empty for
    /// schedulers without per-node structures) — the evidence behind the
    /// NUMA-aware replay partitioning claim (`fig15_numa_replay`).
    pub node_stats: Vec<crate::sched::NodeOpStats>,
    /// Task activations that skipped the scheduler queue entirely
    /// (immediate-successor inline runs).
    pub inline_runs: u64,
    /// Longest inline chain observed.
    pub max_inline_depth: u64,
}

impl RunReport {
    /// Fraction of queue-or-inline task activations that bypassed the
    /// scheduler queue: `inline_runs / (inline_runs + pops)`. The
    /// `fig13_inline_succ` acceptance check (≥ 0.5 on chain-heavy
    /// workloads) reads this.
    pub fn queue_bypass_fraction(&self) -> f64 {
        let total = self.inline_runs + self.sched.pops;
        if total == 0 {
            0.0
        } else {
            self.inline_runs as f64 / total as f64
        }
    }
}

/// How a [`TaskFailure`] came about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A task body panicked; the panic was caught at the body seam and
    /// the worker kept running.
    Panic,
    /// A worker thread terminated abnormally outside a task body
    /// (body panics are caught, so this indicates runtime-internal
    /// failure). Recorded at shutdown by the graceful join.
    WorkerLost,
    /// The stall watchdog tripped: tasks were pending but no body
    /// completed within the configured window. The message carries the
    /// stall diagnostic (queue depths, counters, flight snapshot).
    WatchdogStall,
}

/// One recorded failure: which task failed, where, and why. Collected
/// into [`RunOutcome::failures`] by [`Runtime::run_outcome`].
#[derive(Debug, Clone)]
pub struct TaskFailure {
    /// Id of the failing task (0 for non-task failures such as
    /// [`FailureKind::WatchdogStall`] / [`FailureKind::WorkerLost`]).
    pub task: TaskId,
    /// The failing task's label.
    pub label: &'static str,
    /// Worker the failure was observed on.
    pub worker: usize,
    /// Panic payload message or diagnostic text.
    pub message: String,
    /// Failure class.
    pub kind: FailureKind,
}

/// Result of one fallible run ([`Runtime::run_outcome`]).
///
/// A failed task body does not kill its worker or the process: the panic
/// becomes a [`TaskFailure`], the failed task's transitive successors
/// are *cancelled* (they still run the full completion protocol — the
/// graph drains, taskwaits release, no task leaks — but their bodies are
/// skipped), and the run terminates normally with the failures listed
/// here. The infallible [`Runtime::run`] is a thin wrapper that panics
/// with [`RunOutcome::summary`] when this is not [`RunOutcome::is_ok`].
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Every failure observed during the run, in recording order.
    pub failures: Vec<TaskFailure>,
    /// Task bodies skipped by failure-propagation cancellation during
    /// this run (the failed tasks themselves are not counted here).
    pub tasks_cancelled: u64,
    /// Whether the task graph drained completely. `false` only on the
    /// watchdog-stall path, where the run gave up on a stuck graph (its
    /// remaining tasks are abandoned, not reclaimed).
    pub completed: bool,
}

impl RunOutcome {
    /// No failures were recorded (cancellation count is necessarily 0).
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human-readable account of the failures.
    pub fn summary(&self) -> String {
        if self.is_ok() {
            return "ok".to_string();
        }
        let mut s = format!(
            "{} failure(s), {} task(s) cancelled",
            self.failures.len(),
            self.tasks_cancelled
        );
        for f in &self.failures {
            s.push_str(&format!(
                "; [{:?}] task {} ({}) on worker {}: {}",
                f.kind, f.task, f.label, f.worker, f.message
            ));
        }
        s
    }
}

/// Aggregate runtime counters.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Tasks created.
    pub tasks_created: u64,
    /// Task bodies executed.
    pub tasks_executed: u64,
    /// Tasks whose memory was reclaimed.
    pub tasks_freed: u64,
    /// Allocator counters.
    pub alloc: AllocStats,
    /// Wait-free dependency deliveries (0 under the locking system):
    /// (accesses, deliveries, duplicates).
    pub deps_deliveries: (u64, u64, u64),
}

/// Registry-backed runtime metrics: one handle per counter family, the
/// same sharded single-writer discipline as the §5 tracer (each worker
/// increments only its own cache-padded cell; readers aggregate).
/// Counters and gauges are always live — they replace the old `Shared`
/// atomics one for one. Histograms need a clock read, so they are gated
/// by [`RuntimeConfig::metrics`] and sampled every
/// [`RuntimeConfig::metrics_sample`] tasks per worker.
pub(crate) struct Metrics {
    pub registry: Registry,
    /// Histogram/timestamp gate ([`RuntimeConfig::metrics`]).
    pub enabled: bool,
    /// Sampling mask for the timed paths: `metrics_sample` rounded up to
    /// a power of two, minus one — `tick & mask == 0` selects samples
    /// with an AND instead of a division on the per-task hot path.
    pub sample_mask: u64,
    pub tasks_created: Counter,
    pub tasks_executed: Counter,
    pub tasks_freed: Counter,
    pub live_tasks: Gauge,
    pub inline_runs: Counter,
    pub max_inline_depth: MaxGauge,
    pub inline_routed: Counter,
    pub nested_spawns: Counter,
    /// Task bodies that panicked (caught at the body seam).
    pub tasks_failed: Counter,
    /// Task bodies skipped by failure-propagation cancellation.
    pub tasks_cancelled: Counter,
    /// Stall-watchdog trips.
    pub watchdog_trips: Counter,
    /// Task-body execution time (sampled).
    pub task_exec_ns: Histogram,
    /// Ready-queue wait: scheduler hand-off → body start (sampled).
    pub queue_wait_ns: Histogram,
    /// Ready-task release batch sizes (no clock; recorded when
    /// `enabled`).
    pub release_batch_tasks: Histogram,
    pub flight: FlightRecorder,
    /// Allocator-pressure gauges, published as absolute values from
    /// [`AllocStats`] at snapshot time ([`Runtime::metrics_snapshot`]) so
    /// allocator state appears in the same scrape as the scheduler
    /// counters — no hot-path writes.
    pub alloc_pool_hits: Gauge,
    pub alloc_pool_misses: Gauge,
    pub alloc_slab_bytes: Gauge,
    pub alloc_live_blocks: Gauge,
    pub alloc_oversize: Gauge,
    pub alloc_tasks_recycled: Gauge,
    pub alloc_task_recycle_misses: Gauge,
    pub alloc_peak_live_tasks: Gauge,
}

impl Metrics {
    fn new(cfg: &RuntimeConfig) -> Self {
        let registry = Registry::with_base(
            cfg.workers.max(1),
            vec![
                ("scheduler", format!("{:?}", cfg.sched)),
                ("deps", format!("{:?}", cfg.deps)),
            ],
        );
        Self {
            enabled: cfg.metrics,
            sample_mask: (cfg.metrics_sample.max(1) as u64).next_power_of_two() - 1,
            tasks_created: registry.counter("nanotask_tasks_created_total"),
            tasks_executed: registry.counter("nanotask_tasks_executed_total"),
            tasks_freed: registry.counter("nanotask_tasks_freed_total"),
            live_tasks: registry.gauge("nanotask_live_tasks"),
            inline_runs: registry.counter("nanotask_inline_runs_total"),
            max_inline_depth: registry.max_gauge("nanotask_max_inline_depth"),
            inline_routed: registry.counter("nanotask_inline_routed_total"),
            nested_spawns: registry.counter("nanotask_nested_spawns_total"),
            tasks_failed: registry.counter("nanotask_tasks_failed_total"),
            tasks_cancelled: registry.counter("nanotask_tasks_cancelled_total"),
            watchdog_trips: registry.counter("nanotask_watchdog_trips_total"),
            task_exec_ns: registry.histogram("nanotask_task_exec_ns"),
            queue_wait_ns: registry.histogram("nanotask_queue_wait_ns"),
            release_batch_tasks: registry.histogram("nanotask_release_batch_tasks"),
            flight: if cfg.flight_every > 0 {
                FlightRecorder::new(cfg.flight_every, cfg.flight_capacity.max(1))
            } else {
                FlightRecorder::disabled()
            },
            alloc_pool_hits: registry.gauge("nanotask_alloc_pool_hits"),
            alloc_pool_misses: registry.gauge("nanotask_alloc_pool_misses"),
            alloc_slab_bytes: registry.gauge("nanotask_alloc_slab_bytes"),
            alloc_live_blocks: registry.gauge("nanotask_alloc_live_blocks"),
            alloc_oversize: registry.gauge("nanotask_alloc_oversize"),
            alloc_tasks_recycled: registry.gauge("nanotask_alloc_tasks_recycled"),
            alloc_task_recycle_misses: registry.gauge("nanotask_alloc_task_recycle_misses"),
            alloc_peak_live_tasks: registry.gauge("nanotask_alloc_peak_live_tasks"),
            registry,
        }
    }

    /// Publish an [`AllocStats`] reading into the alloc gauges (absolute
    /// writes; call from snapshot paths only).
    fn publish_alloc(&self, s: &AllocStats) {
        self.alloc_pool_hits.set(s.pool_hits);
        self.alloc_pool_misses.set(s.pool_misses);
        self.alloc_slab_bytes.set(s.slab_bytes);
        self.alloc_live_blocks.set(s.live);
        self.alloc_oversize.set(s.oversize);
        self.alloc_tasks_recycled.set(s.recycle_hits);
        self.alloc_task_recycle_misses.set(s.recycle_misses);
        self.alloc_peak_live_tasks.set(s.peak_live_tasks);
    }
}

pub(crate) struct Shared {
    pub cfg: RuntimeConfig,
    /// The realized worker→NUMA-node placement (contiguous blocks over
    /// `cfg.numa_nodes`); every placement-aware layer reads this one map.
    pub topology: crate::platform::Topology,
    pub sched: Arc<dyn Scheduler>,
    pub deps: Arc<dyn DependencySystem>,
    pub alloc: Arc<dyn RuntimeAllocator>,
    /// Recycling free list for `Task` shells, layered on `alloc`:
    /// reclaimed task objects come back with their interior capacity
    /// (decls buffer, bottom map, cold box) instead of round-tripping
    /// through dealloc/alloc on every spawn.
    pub task_slab: TaskSlab,
    pub tracer: Tracer,
    pub noise: Option<NoiseInjector>,
    pub graph: Mutex<Vec<GraphEdge>>,
    /// Dependency-edge recording switch (seeded from `cfg.record_graph`,
    /// toggled at runtime by the replay recorder).
    pub graph_enabled: AtomicBool,
    /// Root-spawn capture hook; `has_capture` is the hot-path fast flag
    /// and `capture_generation` invalidates per-task caches of the Arc
    /// so spawns don't take the mutex on every call.
    pub capture: Mutex<Option<Arc<dyn SpawnCapture>>>,
    pub has_capture: AtomicBool,
    pub capture_generation: AtomicU64,
    pub next_id: AtomicU64,
    pub shutdown: AtomicBool,
    /// Failures recorded since the current run started (drained into
    /// [`RunOutcome::failures`] when it ends).
    pub failures: Mutex<Vec<TaskFailure>>,
    /// Monotone count of task-body failures over the runtime's lifetime
    /// — the cheap per-iteration probe the replay engine reads
    /// ([`TaskCtx::failure_count`]).
    pub failed_count: AtomicU64,
    /// Eligible-body counter of the fault injector (reset per run).
    pub fault_tick: AtomicU64,
    /// Watchdog coordination: whether a fallible run is in flight,
    /// whether the monitor tripped for it, and the stall diagnostic.
    pub run_active: AtomicBool,
    pub watchdog_tripped: AtomicBool,
    pub watchdog_diag: Mutex<String>,
    /// Registry-backed counters, gauges and histograms. The life-cycle
    /// counters (created/executed/freed/live), the fast-path counters
    /// (`inline_runs`, `max_inline_depth`, `inline_routed` — the
    /// partition-routed releases kept inline by
    /// [`TaskCtx::release_held_inline_to`]) and `nested_spawns` (the
    /// nested-task-domain detector the replay engine reads deltas of)
    /// all live here.
    pub metrics: Metrics,
}

impl Shared {
    /// Allocate a task object — as a recycled shell when the slab has
    /// one (re-initialized in place, interior capacity retained), or as
    /// a fresh allocation otherwise.
    ///
    /// # Safety
    /// The returned pointer is valid until handed to [`Shared::free_task`].
    #[allow(clippy::too_many_arguments)]
    unsafe fn alloc_task(
        &self,
        worker: usize,
        id: TaskId,
        label: &'static str,
        parent: *mut Task,
        created_by: u32,
        body: TaskBody,
        decls: Vec<crate::deps::AccessDecl>,
    ) -> *mut Task {
        let (p, recycled) = self.task_slab.acquire(worker);
        let t = p as *mut Task;
        unsafe {
            if recycled {
                (*t).reinit_recycled(id, label, parent, created_by, body, decls);
            } else {
                t.write(Task::new(id, label, parent, created_by, body, decls));
            }
        }
        t
    }

    /// Reclaim a task object and its access array. The shell is cleared
    /// ([`Task::reset_for_recycle`]) and returned to the task slab, not
    /// deallocated.
    ///
    /// # Safety
    /// Called exactly once per task, when its removal refs hit zero.
    unsafe fn free_task(&self, t: *mut Task, worker: usize) {
        self.metrics.tasks_freed.inc(worker);
        self.metrics.live_tasks.dec(worker);
        unsafe {
            let task = &mut *t;
            if !task.accesses.is_null() {
                for i in 0..task.n_accesses {
                    core::ptr::drop_in_place(task.accesses.add(i));
                }
                let layout = Layout::array::<DataAccess>(task.n_accesses).unwrap();
                self.alloc.dealloc(task.accesses as *mut u8, layout);
                task.accesses = core::ptr::null_mut();
                task.n_accesses = 0;
            }
            task.reset_for_recycle();
            self.task_slab.recycle(worker, t as *mut u8);
        }
    }
}

/// Per-worker context (thread-confined).
pub(crate) struct WorkerCtx {
    pub id: usize,
    pub shared: Arc<Shared>,
    pub recorder: RefCell<CoreRecorder>,
    /// Completion-window flag (fast path): while set, dependency-release
    /// `task_ready` callbacks collect into `pending` instead of entering
    /// the scheduler one by one.
    collecting: core::cell::Cell<bool>,
    /// Body-execution flag (fast path): while set, `release_held` defers
    /// released tasks into `pending`; they are handed over (or run
    /// inline) when the executing body's completion window closes.
    defer_held: core::cell::Cell<bool>,
    /// Inline-chain depth of the task currently executing on this worker
    /// (fast path; maintained by `execute_task`). Read by
    /// [`TaskCtx::release_held_inline_to`] to decline inline keeps that
    /// the depth bound would hand to the scheduler anyway — keeping the
    /// `inline_routed` counter equal to releases that actually run
    /// inline.
    inline_depth: core::cell::Cell<usize>,
    /// Newly-released tasks awaiting one batched scheduler hand-off,
    /// minus at most one kept as the worker's inline next task.
    pending: RefCell<Vec<TaskPtr>>,
    /// Reusable drain buffer `pending` is swapped into during hand-off,
    /// so the hot path never re-allocates per completion.
    scratch: RefCell<Vec<TaskPtr>>,
    /// Metrics sampling cursors (thread-confined): enqueue-side for the
    /// queue-wait stamp, execute-side for the body-time histogram. One
    /// clock read per `metrics_sample` tasks each.
    metrics_enq_tick: core::cell::Cell<u64>,
    metrics_exec_tick: core::cell::Cell<u64>,
}

impl WorkerCtx {
    fn new(id: usize, shared: Arc<Shared>, recorder: CoreRecorder) -> Self {
        Self {
            id,
            shared,
            recorder: RefCell::new(recorder),
            collecting: core::cell::Cell::new(false),
            defer_held: core::cell::Cell::new(false),
            inline_depth: core::cell::Cell::new(0),
            pending: RefCell::new(Vec::new()),
            scratch: RefCell::new(Vec::new()),
            metrics_enq_tick: core::cell::Cell::new(0),
            metrics_exec_tick: core::cell::Cell::new(0),
        }
    }

    fn record(&self, kind: EventKind, payload: u64) {
        self.recorder.borrow_mut().record(kind, payload);
    }

    /// Queue-wait sampling, producer side: every `metrics_sample`-th
    /// release stamps its task with the tracer clock; the executing
    /// worker reads the stamp back in `run_body`. One clock read per
    /// sample interval, nothing at all with metrics off.
    fn stamp_ready(&self, t: *mut Task) {
        let m = &self.shared.metrics;
        if !m.enabled {
            return;
        }
        let tick = self.metrics_enq_tick.get().wrapping_add(1);
        self.metrics_enq_tick.set(tick);
        if tick & m.sample_mask == 0 {
            // `max(1)`: 0 means "never stamped".
            unsafe { (*t).ready_ns = self.shared.tracer.now().max(1) };
        }
    }

    /// Hand `batch` to the scheduler: as one slice when batched release
    /// is enabled, per task otherwise (so the inline-only ablation
    /// measures inline execution alone, not hidden batching).
    fn hand_off(&self, batch: &[TaskPtr]) {
        if batch.is_empty() {
            return;
        }
        let mut rec = self.recorder.borrow_mut();
        if self.shared.cfg.batched_release {
            if self.shared.metrics.enabled {
                self.shared
                    .metrics
                    .release_batch_tasks
                    .record(self.id, batch.len() as u64);
            }
            self.shared
                .sched
                .add_ready_batch(batch, self.id, Some(&mut rec));
        } else {
            for &t in batch {
                self.shared.sched.add_ready(t, self.id, Some(&mut rec));
            }
        }
    }

    /// Hand any deferred/collected ready tasks to the scheduler. Called
    /// before a worker starts waiting (taskwait), so deferred releases
    /// can never deadlock the waiter against its own buffer.
    fn flush_pending(&self) {
        if self.pending.borrow().is_empty() {
            return;
        }
        let mut scratch = self.scratch.borrow_mut();
        std::mem::swap(&mut *self.pending.borrow_mut(), &mut *scratch);
        self.hand_off(&scratch);
        scratch.clear();
    }
}

/// Dependency-system callbacks bound to a worker.
struct Hooks<'a> {
    w: &'a WorkerCtx,
}

unsafe impl DepHooks for Hooks<'_> {
    fn task_ready(&self, task: *mut Task) {
        self.w.stamp_ready(task);
        if self.w.collecting.get() {
            // Fast path, completion window: collect instead of queueing.
            self.w.pending.borrow_mut().push(TaskPtr(task));
            return;
        }
        let mut rec = self.w.recorder.borrow_mut();
        self.w
            .shared
            .sched
            .add_ready(TaskPtr(task), self.w.id, Some(&mut rec));
    }

    fn task_ready_batch(&self, tasks: &[*mut Task]) {
        if tasks.is_empty() {
            return;
        }
        self.w.stamp_ready(tasks[0]);
        if self.w.collecting.get() {
            self.w
                .pending
                .borrow_mut()
                .extend(tasks.iter().map(|&t| TaskPtr(t)));
            return;
        }
        if self.w.shared.cfg.batched_release {
            if self.w.shared.metrics.enabled {
                self.w
                    .shared
                    .metrics
                    .release_batch_tasks
                    .record(self.w.id, tasks.len() as u64);
            }
            // SAFETY: `TaskPtr` is `repr(transparent)` over `*mut Task`.
            let batch: &[TaskPtr] = unsafe {
                core::slice::from_raw_parts(tasks.as_ptr() as *const TaskPtr, tasks.len())
            };
            let mut rec = self.w.recorder.borrow_mut();
            self.w
                .shared
                .sched
                .add_ready_batch(batch, self.w.id, Some(&mut rec));
        } else {
            // Feature disabled: byte-for-byte the pre-batching behavior.
            for &t in tasks {
                self.task_ready(t);
            }
        }
    }

    fn task_free(&self, task: *mut Task) {
        unsafe { self.w.shared.free_task(task, self.w.id) };
    }

    fn edge(&self, from: *mut Task, to: *mut Task, addr: usize, kind: u8) {
        if !self.w.shared.graph_enabled.load(Ordering::Relaxed) {
            return;
        }
        let (f, t) = unsafe { (&*from, &*to) };
        // Labels are `&'static str` end to end: no allocation per edge.
        self.w.shared.graph.lock().push(GraphEdge {
            from: f.id,
            from_label: f.label,
            to: t.id,
            to_label: t.label,
            addr,
            kind: EdgeKind::from_u8(kind),
        });
    }

    fn nworkers(&self) -> usize {
        self.w.shared.cfg.workers
    }

    fn allocator(&self) -> &dyn RuntimeAllocator {
        &*self.w.shared.alloc
    }
}

/// Handle to a running task, passed to every task body. Provides task
/// spawning (nested parallelism), taskwait and reduction-slot access —
/// the library-level OmpSs-2 surface.
/// Generation-stamped cache of the installed spawn capture. A `Cell` so
/// the per-spawn hit path is a take/put move pair with no refcount
/// traffic: the entry is taken out for the duration of the `on_spawn`
/// call and put back afterwards — a re-entrant root spawn (none exist
/// in-tree; captures call `spawn_held`, which skips this path) would
/// find the cell empty and re-fetch from the runtime, which is correct,
/// just slower.
type CaptureCache = core::cell::Cell<Option<(u64, Option<Arc<dyn SpawnCapture>>)>>;

pub struct TaskCtx<'a> {
    task: *mut Task,
    worker: &'a WorkerCtx,
    /// Cached spawn-capture handle (generation-stamped), so repeated
    /// root spawns don't take the capture mutex each time.
    capture_cache: CaptureCache,
}

impl TaskCtx<'_> {
    /// This task's id.
    pub fn task_id(&self) -> TaskId {
        unsafe { (*self.task).id }
    }

    /// The executing worker's id.
    pub fn worker_id(&self) -> usize {
        self.worker.id
    }

    /// Total workers in the runtime.
    pub fn nworkers(&self) -> usize {
        self.worker.shared.cfg.workers
    }

    /// Spawn a child task with dependencies.
    pub fn spawn(&self, deps: Deps, body: impl FnOnce(&TaskCtx) + Send + 'static) {
        self.spawn_labeled("task", deps, body);
    }

    /// Spawn with a label (shows up in traces and graph dumps).
    pub fn spawn_labeled(
        &self,
        label: &'static str,
        deps: Deps,
        body: impl FnOnce(&TaskCtx) + Send + 'static,
    ) {
        self.spawn_prioritized(label, 0, deps, body);
    }

    /// Spawn with an explicit scheduling priority (the OmpSs-2 `priority`
    /// clause); higher-priority ready tasks are scheduled first under
    /// [`crate::sched::Policy::Priority`].
    pub fn spawn_prioritized(
        &self,
        label: &'static str,
        priority: i32,
        deps: Deps,
        body: impl FnOnce(&TaskCtx) + Send + 'static,
    ) {
        let body: TaskBody = Box::new(body);
        if self.worker.shared.has_capture.load(Ordering::Acquire) {
            if !unsafe { (*self.task).parent.is_null() } {
                // Nested spawn under an installed capture: count it so
                // the replay engine can detect nested task domains.
                self.worker.shared.metrics.nested_spawns.inc(self.worker.id);
            } else {
                return self.spawn_captured(label, priority, deps, body);
            }
        }
        self.spawn_internal(label, priority, deps, body, None);
    }

    /// Offer one root spawn to the installed capture (spawning normally
    /// if none is active). The capture handle is cached per task
    /// context, generation-stamped against [`Runtime::set_spawn_capture`];
    /// the hit path is two atomic loads plus a cell take/put — no
    /// refcount traffic per spawn. Under `replay_compat` the pre-hot-loop
    /// behavior is kept: the cache stays intact during the call and a
    /// clone of the Arc is handed out per spawn (the PR 4 cost model the
    /// `fig16_replay_hotloop` baseline measures).
    fn spawn_captured(&self, label: &'static str, priority: i32, deps: Deps, body: TaskBody) {
        let shared = &self.worker.shared;
        let generation = shared.capture_generation.load(Ordering::Acquire);
        let (g, cap) = match self.capture_cache.take() {
            Some((g, cap)) if g == generation => (g, cap),
            _ => (generation, shared.capture.lock().clone()),
        };
        if !cap.as_ref().is_some_and(|c| c.active()) {
            self.capture_cache.set(Some((g, cap)));
            self.spawn_internal(label, priority, deps, body, None);
            return;
        }
        if shared.cfg.replay_compat {
            let capc = Arc::clone(cap.as_ref().expect("active capture"));
            self.capture_cache.set(Some((g, cap)));
            if let Some((deps, body)) = capc.on_spawn(self, label, priority, deps, body) {
                let id = self.spawn_internal(label, priority, deps, body, None);
                capc.on_spawned(id);
            }
            return;
        }
        {
            let c = cap.as_ref().expect("active capture");
            if let Some((deps, body)) = c.on_spawn(self, label, priority, deps, body) {
                let id = self.spawn_internal(label, priority, deps, body, None);
                c.on_spawned(id);
            }
        }
        self.capture_cache.set(Some((g, cap)));
    }

    /// Create a child task with *manually managed* readiness: the task
    /// is fully created (allocated, accounted, linked to its parent) but
    /// not registered with the dependency system and not scheduled.
    /// `decls` are attached as data only (so [`TaskCtx::red_slot`] works
    /// when reduction state was pre-attached) — they impose no ordering.
    ///
    /// The task runs after [`TaskCtx::release_held`] is called on the
    /// returned handle, exactly once, from any task context of the same
    /// runtime. This is the execution seam the replay subsystem feeds:
    /// readiness comes from its frozen graph's in-degree counters
    /// instead of from dependency-system deliveries.
    pub fn spawn_held(
        &self,
        label: &'static str,
        priority: i32,
        decls: Vec<crate::deps::AccessDecl>,
        body: impl FnOnce(&TaskCtx) + Send + 'static,
    ) -> HeldTask {
        self.spawn_held_inner(label, priority, decls, Box::new(body), None)
    }

    /// Like [`TaskCtx::spawn_held`], but attaches a [`TaskEpilogue`] that
    /// runs right after the body on the executing worker. The body is
    /// passed through as the already-boxed [`TaskBody`] — together these
    /// let a caller that manages many similar tasks (the replay engine's
    /// steady state) avoid wrapping every body in a fresh closure
    /// allocation per task per iteration.
    pub fn spawn_held_with_epilogue(
        &self,
        label: &'static str,
        priority: i32,
        decls: Vec<crate::deps::AccessDecl>,
        body: TaskBody,
        epilogue: Arc<dyn TaskEpilogue>,
        tag: u64,
    ) -> HeldTask {
        self.spawn_held_inner(label, priority, decls, body, Some((epilogue, tag)))
    }

    fn spawn_held_inner(
        &self,
        label: &'static str,
        priority: i32,
        decls: Vec<crate::deps::AccessDecl>,
        body: TaskBody,
        epilogue: Option<(Arc<dyn TaskEpilogue>, u64)>,
    ) -> HeldTask {
        let shared = &self.worker.shared;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.worker.record(EventKind::CreateBegin, id);
        shared.metrics.tasks_created.inc(self.worker.id);
        shared.metrics.live_tasks.inc(self.worker.id);
        let t = unsafe {
            let t = shared.alloc_task(
                self.worker.id,
                id,
                label,
                self.task,
                self.worker.id as u32,
                body,
                decls,
            );
            (*t).priority = priority;
            if let Some(epilogue) = epilogue {
                (*t).set_epilogue(epilogue);
            }
            // No dependency registration: readiness is one release call
            // (+ the creation guard we drop below), and reclamation needs
            // only the subtree reference (no ASMs are materialized).
            (*t).registered = false;
            (*t).state = TaskState::new_held();
            (*self.task).add_child();
            let became_ready = (*t).unblock();
            debug_assert!(!became_ready, "held task ready before release");
            t
        };
        self.worker.record(EventKind::CreateEnd, id);
        HeldTask(t)
    }

    /// Record a marker event on the executing worker's trace stream.
    pub fn trace_mark(&self, kind: EventKind, payload: u64) {
        self.worker.record(kind, payload);
    }

    /// Toggle dependency-edge recording (see
    /// [`Runtime::set_graph_recording`]) from within a task.
    pub fn set_graph_recording(&self, on: bool) {
        self.worker
            .shared
            .graph_enabled
            .store(on, Ordering::Relaxed);
    }

    /// Whether dependency edges are currently being recorded.
    pub fn graph_recording(&self) -> bool {
        self.worker.shared.graph_enabled.load(Ordering::Relaxed)
    }

    /// Drain the recorded dependency edges (the in-task equivalent of
    /// [`Runtime::graph_edges`] + [`Runtime::clear_graph_edges`]).
    pub fn take_graph_edges(&self) -> Vec<GraphEdge> {
        std::mem::take(&mut *self.worker.shared.graph.lock())
    }

    /// Cumulative count of spawns issued by non-root tasks while a spawn
    /// capture was installed (nested task domains). The replay engine
    /// reads deltas of this around record iterations.
    pub fn nested_spawn_count(&self) -> u64 {
        self.worker.shared.metrics.nested_spawns.value()
    }

    /// Whether the current task was cancelled by failure propagation
    /// (its body was skipped; bodies observing this are epilogue-driven
    /// helpers such as the replay engine's per-node hooks).
    pub fn task_cancelled(&self) -> bool {
        unsafe { (*self.task).is_cancelled() }
    }

    /// Monotone count of task-body failures recorded by this runtime.
    /// Snapshot-diff it around a phase to detect failures cheaply (the
    /// replay engine probes this once per iteration).
    pub fn failure_count(&self) -> u64 {
        self.worker.shared.failed_count.load(Ordering::Acquire)
    }

    /// Clear the dependency systems' run-scoped failure-propagation
    /// state (poisoned address chains/queues) from *inside* a run.
    ///
    /// Only call this from the root body at a barrier — directly after
    /// [`TaskCtx::taskwait`] with no tasks in flight — so the reset
    /// cannot race dependency registration or release traffic. The
    /// replay engine uses it at the end of a faulted iteration: the
    /// iteration boundary becomes the recovery point, and the next
    /// iteration's tasks register on clean addresses instead of
    /// inheriting the poison for the rest of the run.
    pub fn reset_fault_propagation(&self) {
        // SAFETY: `self.task` is the live task this ctx executes, we are
        // its body thread, and the caller guarantees the barrier (no
        // tasks in flight) — the contract of `reset_faults_under`.
        unsafe { self.worker.shared.deps.reset_faults_under(self.task) };
    }

    /// Release a task created by [`TaskCtx::spawn_held`], handing it to
    /// the scheduler. Must be called exactly once per handle.
    ///
    /// With the zero-queue fast path enabled
    /// ([`RuntimeConfig::inline_successors`] / `batched_release`), a
    /// release issued from a non-root task body is *deferred*: the task
    /// is handed over (in a batch, or run inline as the worker's
    /// immediate successor) when the releasing body completes — this is
    /// how replayed task chains bypass the scheduler entirely. Releases
    /// from the root task, and all releases with the feature disabled,
    /// reach the scheduler immediately.
    pub fn release_held(&self, h: HeldTask) {
        let t = h.0;
        if unsafe { (*t).unblock() } {
            let w = self.worker;
            w.stamp_ready(t);
            if w.defer_held.get() || w.collecting.get() {
                w.pending.borrow_mut().push(TaskPtr(t));
                return;
            }
            let mut rec = w.recorder.borrow_mut();
            w.shared.sched.add_ready(TaskPtr(t), w.id, Some(&mut rec));
        } else {
            debug_assert!(false, "held task released twice");
        }
    }

    /// Release a batch of tasks created by [`TaskCtx::spawn_held`],
    /// handing them to the scheduler *targeted at NUMA node `node`*
    /// ([`crate::sched::Scheduler::add_ready_batch_to`]) — the NUMA-aware
    /// replay partitioning release path: the replay engine knows which
    /// partition each released task belongs to, so the batch goes
    /// straight into that node's add buffer instead of the releasing
    /// worker's home buffer.
    ///
    /// Unlike [`TaskCtx::release_held`], targeted releases are never
    /// deferred by the zero-queue fast path: the whole point is placing
    /// the tasks on their assigned node *now*, and direct insertion
    /// during a task body is always safe (it is the pre-fast-path
    /// behavior). Each handle must be released exactly once.
    pub fn release_held_batch_to(&self, node: usize, tasks: &[HeldTask]) {
        if tasks.is_empty() {
            return;
        }
        for h in tasks {
            let became_ready = unsafe { (*h.0).unblock() };
            debug_assert!(became_ready, "held task released twice");
        }
        let w = self.worker;
        w.stamp_ready(tasks[0].0);
        if w.shared.metrics.enabled {
            w.shared
                .metrics
                .release_batch_tasks
                .record(w.id, tasks.len() as u64);
        }
        // SAFETY: `HeldTask` and `TaskPtr` are both `repr(transparent)`
        // over `*mut Task`.
        let batch: &[TaskPtr] =
            unsafe { core::slice::from_raw_parts(tasks.as_ptr() as *const TaskPtr, tasks.len()) };
        let mut rec = w.recorder.borrow_mut();
        w.shared
            .sched
            .add_ready_batch_to(node, batch, w.id, Some(&mut rec));
    }

    /// Try to keep one node-targeted held-task release as this worker's
    /// *inline* next task instead of inserting it into node `node`'s
    /// queue — the composition of the zero-queue fast path with the
    /// NUMA-aware replay partitioning: when the released task's assigned
    /// node is the releasing worker's own node, running it inline
    /// preserves the static schedule's placement *and* skips the queue
    /// round-trip (dependence locality composes with partition locality
    /// instead of bypassing it).
    ///
    /// Returns `true` when the task was taken (released exactly like
    /// [`TaskCtx::release_held`] in deferred mode: it becomes the
    /// worker's inline next task when the executing body's completion
    /// window closes — the caller offers at most one candidate per
    /// completion, so acceptance here means the task runs inline and
    /// the `inline_routed` counter is exact). Returns `false` — and
    /// does **not** release the handle — when the fast path is off, the
    /// caller is the root task (whose releases must reach the other
    /// workers eagerly), the inline depth bound has been reached (the
    /// completion window would hand the task to the scheduler anyway),
    /// or `node` is not this worker's node; the caller then routes the
    /// task normally ([`TaskCtx::release_held_batch_to`]).
    pub fn release_held_inline_to(&self, node: usize, h: HeldTask) -> bool {
        let w = self.worker;
        if !w.shared.cfg.inline_successors || !w.defer_held.get() {
            return false;
        }
        if w.inline_depth.get() >= w.shared.cfg.inline_max_depth {
            return false;
        }
        if w.shared.topology.node_of(w.id) != node {
            return false;
        }
        self.release_held(h);
        w.shared.metrics.inline_routed.inc(w.id);
        true
    }

    /// OmpSs-2 `taskwait on(...)`: block until every earlier task whose
    /// accesses conflict with `deps` has completed — without waiting for
    /// unrelated children. Implemented exactly as the model defines it: an
    /// empty task carrying `deps` is inserted into the dependency system
    /// and the worker helps execute other tasks until it runs.
    pub fn taskwait_on(&self, deps: Deps) {
        // Deferred releases must be visible to the scheduler before this
        // worker starts waiting on them.
        self.worker.flush_pending();
        let task = unsafe { &*self.task };
        self.worker.record(EventKind::TaskwaitBegin, task.id);
        let done = Arc::new(AtomicBool::new(false));
        self.spawn_internal(
            "taskwait_on",
            i32::MAX,
            deps,
            Box::new(|_| {}),
            Some(Arc::clone(&done)),
        );
        let mut backoff = Backoff::new();
        while !done.load(Ordering::Acquire) {
            let got = {
                let mut rec = self.worker.recorder.borrow_mut();
                self.worker
                    .shared
                    .sched
                    .get_ready(self.worker.id, Some(&mut rec))
            };
            match got {
                Some(t) => {
                    execute_task(self.worker, t.0);
                    backoff.reset();
                }
                None => backoff.snooze(),
            }
        }
        self.worker.record(EventKind::TaskwaitEnd, task.id);
    }

    fn spawn_internal(
        &self,
        label: &'static str,
        priority: i32,
        deps: Deps,
        body: crate::task::TaskBody,
        completion: Option<Arc<AtomicBool>>,
    ) -> TaskId {
        let shared = &self.worker.shared;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.worker.record(EventKind::CreateBegin, id);
        shared.metrics.tasks_created.inc(self.worker.id);
        shared.metrics.live_tasks.inc(self.worker.id);

        unsafe {
            let t = shared.alloc_task(
                self.worker.id,
                id,
                label,
                self.task,
                self.worker.id as u32,
                body,
                deps.into_decls(),
            );
            (*t).priority = priority;
            if let Some(flag) = completion {
                (*t).set_completion_flag(flag);
            }
            (*self.task).add_child();
            let hooks = Hooks { w: self.worker };
            shared.deps.register(t, &hooks);
            if (*t).unblock() {
                hooks.task_ready(t);
            }
        }
        self.worker.record(EventKind::CreateEnd, id);
        id
    }

    /// Wait until every child spawned so far (and their descendants) has
    /// completed. The worker executes other ready tasks while waiting
    /// (work-assisting), so taskwait never deadlocks the thread pool.
    pub fn taskwait(&self) {
        // Deferred releases must be visible to the scheduler before this
        // worker starts waiting on them (they may be the very children
        // the taskwait is for).
        self.worker.flush_pending();
        let task = unsafe { &*self.task };
        if task.pending_children() <= 1 {
            return;
        }
        self.worker.record(EventKind::TaskwaitBegin, task.id);
        let mut backoff = Backoff::new();
        while task.pending_children() > 1 {
            let got = {
                let mut rec = self.worker.recorder.borrow_mut();
                self.worker
                    .shared
                    .sched
                    .get_ready(self.worker.id, Some(&mut rec))
            };
            match got {
                Some(t) => {
                    execute_task(self.worker, t.0);
                    backoff.reset();
                }
                None => backoff.snooze(),
            }
            if let Some(noise) = &self.worker.shared.noise {
                let mut rec = self.worker.recorder.borrow_mut();
                noise.check(self.worker.id as u16, &mut rec);
            }
        }
        self.worker.record(EventKind::TaskwaitEnd, task.id);
    }

    /// The private reduction slot of the current worker for the reduction
    /// access declared on `target`. Panics if this task has no reduction
    /// access on that address.
    pub fn red_slot<T>(&self, target: &T) -> *mut T {
        let addr = target as *const T as usize;
        let task = unsafe { &*self.task };
        let decls = unsafe { task.decls() };
        let d = decls
            .iter()
            .find(|d| d.addr == addr && d.mode.is_reduction())
            .expect("no reduction access declared on this address");
        // Invariant (not user-reachable): a body only runs after
        // `register` attached `ReductionInfo` to every reduction decl.
        let info = d
            .reduction
            .as_ref()
            .expect("reduction info not attached (task not registered?)");
        unsafe { info.slot(self.worker.id) as *mut T }
    }
}

/// Install the process-wide panic hook that silences injected-fault
/// panics (see [`FAULT_PANIC_PREFIX`]). Installed at most once; every
/// other panic is forwarded to the previously installed hook.
fn install_fault_panic_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with(FAULT_PANIC_PREFIX));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// SplitMix64 finalizer — the fault injector's seed-derived selection.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Fault-injection check, run at the top of the body `catch_unwind`
/// scope (so an injected panic takes exactly the real-failure path).
/// See [`FaultPlan`] for the eligibility and determinism contract.
fn maybe_inject_fault(w: &WorkerCtx, t: *mut Task, plan: &FaultPlan) {
    let (parent, label, id) = unsafe { ((*t).parent, (*t).label, (*t).id) };
    if parent.is_null() || label == "taskwait_on" {
        return;
    }
    if let Some(wid) = plan.panic_in_worker
        && w.id != wid
    {
        return;
    }
    let tick = w.shared.fault_tick.fetch_add(1, Ordering::Relaxed);
    if plan.panic_at_nth == Some(tick) {
        std::panic::panic_any(format!(
            "{FAULT_PANIC_PREFIX}: task {id} ({label}) on worker {}",
            w.id
        ));
    }
    if plan.delay_ns > 0 && splitmix(plan.seed ^ tick) & 7 == 0 {
        let t0 = std::time::Instant::now();
        while (t0.elapsed().as_nanos() as u64) < plan.delay_ns {
            core::hint::spin_loop();
        }
    }
}

/// A task body panicked: convert the payload into a [`TaskFailure`],
/// mark the task cancelled (so `body_done` poisons its successors
/// through the dependency system) and bump the failure counters.
#[cold]
fn record_body_failure(w: &WorkerCtx, t: *mut Task, payload: Box<dyn std::any::Any + Send>) {
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string());
    let (id, label) = unsafe { ((*t).id, (*t).label) };
    unsafe { (*t).mark_cancelled() };
    w.shared.metrics.tasks_failed.inc(w.id);
    // AcqRel: a `failure_count` reader that observes this increment also
    // observes the failure record and the cancelled bit.
    w.shared.failed_count.fetch_add(1, Ordering::AcqRel);
    w.shared.failures.lock().push(TaskFailure {
        task: id,
        label,
        worker: w.id,
        message,
        kind: FailureKind::Panic,
    });
}

/// Run one task body (no completion protocol), then its epilogue hook
/// if one is attached ([`TaskCtx::spawn_held_with_epilogue`]).
fn run_body(w: &WorkerCtx, t: *mut Task) {
    let id = unsafe { (*t).id };
    let m = &w.shared.metrics;
    // Sampled latency instrumentation: a queue-wait stamp left by the
    // producer side, and the per-worker execute-side sampling cursor.
    // Both histograms share one clock read when they fire together.
    let mut exec_t0 = 0u64;
    if m.enabled {
        let ready_ns = unsafe { core::mem::replace(&mut (*t).ready_ns, 0) };
        let tick = w.metrics_exec_tick.get().wrapping_add(1);
        w.metrics_exec_tick.set(tick);
        let sampled = tick & m.sample_mask == 0;
        if ready_ns != 0 || sampled {
            let now = w.shared.tracer.now();
            if ready_ns != 0 {
                m.queue_wait_ns.record(w.id, now.saturating_sub(ready_ns));
            }
            if sampled {
                exec_t0 = now.max(1);
            }
        }
    }
    w.record(EventKind::TaskStart, id);
    {
        let ctx = TaskCtx {
            task: t,
            worker: w,
            capture_cache: core::cell::Cell::new(None),
        };
        let body = unsafe { (*t).take_body() }.expect("task executed twice");
        if unsafe { (*t).is_cancelled() } {
            // Cancelled by failure propagation: skip the body (dropping
            // it releases its captured state) but still run the epilogue
            // and, in the caller, the full completion protocol — the
            // graph must drain cleanly, only the work is skipped.
            drop(body);
            m.tasks_cancelled.inc(w.id);
        } else if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(plan) = &w.shared.cfg.fault_plan {
                maybe_inject_fault(w, t, plan);
            }
            body(&ctx);
        })) {
            record_body_failure(w, t, payload);
        }
        // SAFETY: only the executing worker touches the epilogue after
        // publication (same confinement as `take_body`). The epilogue
        // runs even for cancelled/failed tasks: it drives the replay
        // engine's per-iteration countdown, which must drain.
        if let Some((epi, tag)) = unsafe { (*t).take_epilogue() } {
            epi.run(&ctx, tag);
        }
    }
    w.record(EventKind::TaskEnd, id);
    m.tasks_executed.inc(w.id);
    if exec_t0 != 0 {
        m.task_exec_ns
            .record(w.id, w.shared.tracer.now().saturating_sub(exec_t0));
    }
    m.flight.tick(&m.registry);
}

/// Pick the task to keep as the worker's inline next task: the first one
/// this completion released (its immediate successor), or — under the
/// priority policy — the highest-priority one (FIFO among equals).
fn pick_inline(pending: &mut Vec<TaskPtr>, policy: Policy) -> TaskPtr {
    let idx = match policy {
        Policy::Priority => pending
            .iter()
            .enumerate()
            .max_by_key(|(i, t)| (unsafe { (*t.0).priority }, core::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0),
        _ => 0,
    };
    pending.remove(idx)
}

/// Execute a task body and run the completion protocol.
///
/// With the zero-queue fast path enabled
/// ([`RuntimeConfig::inline_successors`] / `batched_release`), every
/// successor released by the completion is collected; one is kept and run
/// inline on this worker (hot cache, no queue, no lock — the
/// immediate-successor chain, bounded by `inline_max_depth`), the rest
/// are handed to the scheduler as a single batch.
fn execute_task(w: &WorkerCtx, t: *mut Task) {
    let shared = &w.shared;
    let inline_on = shared.cfg.inline_successors;
    if !inline_on && !shared.cfg.batched_release {
        // Feature off: the exact pre-fast-path protocol.
        run_body(w, t);
        let hooks = Hooks { w };
        unsafe {
            shared.deps.body_done(t, &hooks);
            if (*t).drop_child_ref() {
                finish_subtree(w, t);
            }
        }
        return;
    }

    let mut t = t;
    let mut depth: usize = 0;
    let saved_defer = w.defer_held.get();
    let saved_depth = w.inline_depth.get();
    loop {
        // Held-task releases issued by this body become inline/batch
        // candidates — except from the root task, whose spawn-phase
        // releases must reach the other workers eagerly.
        w.defer_held.set(!unsafe { (*t).parent.is_null() });
        w.inline_depth.set(depth);
        run_body(w, t);
        w.defer_held.set(saved_defer);
        w.inline_depth.set(saved_depth);

        // Completion window: collect every task this completion releases.
        w.collecting.set(true);
        let hooks = Hooks { w };
        unsafe {
            shared.deps.body_done(t, &hooks);
            if (*t).drop_child_ref() {
                finish_subtree(w, t);
            }
        }
        w.collecting.set(false);

        let mut next = None;
        {
            let mut scratch = w.scratch.borrow_mut();
            {
                let mut pending = w.pending.borrow_mut();
                if inline_on && depth < shared.cfg.inline_max_depth && !pending.is_empty() {
                    next = Some(pick_inline(&mut pending, shared.cfg.policy));
                }
                std::mem::swap(&mut *pending, &mut *scratch);
            }
            w.hand_off(&scratch);
            scratch.clear();
        }
        match next {
            Some(nt) => {
                depth += 1;
                shared.metrics.inline_runs.inc(w.id);
                shared.metrics.max_inline_depth.record(w.id, depth as u64);
                w.record(EventKind::InlineRun, unsafe { (*nt.0).id });
                if let Some(noise) = &shared.noise {
                    let mut rec = w.recorder.borrow_mut();
                    noise.check(w.id as u16, &mut rec);
                }
                t = nt.0;
            }
            None => break,
        }
    }
}

/// A task's subtree completed: release (locking system), notify the
/// parent chain, and drop the subtree removal reference.
fn finish_subtree(w: &WorkerCtx, t: *mut Task) {
    let hooks = Hooks { w };
    unsafe {
        // Held (replay) tasks never registered: their decls are data for
        // `red_slot` only and must not be released.
        if (*t).registered {
            w.shared.deps.fully_done(t, &hooks);
        }
        let parent = (*t).parent;
        // Signal external waiters before the memory can be reclaimed.
        if let Some(flag) = (*t).completion_flag() {
            let flag = Arc::clone(flag);
            flag.store(true, Ordering::Release);
        }
        if (*t).drop_removal_ref() {
            w.shared.free_task(t, w.id);
        }
        if !parent.is_null() && (*parent).drop_child_ref() {
            finish_subtree(w, parent);
        }
    }
}

/// Build the stall diagnostic the watchdog attaches to its
/// [`FailureKind::WatchdogStall`] failure: life-cycle counters,
/// per-scheduler queue depths and the flight-recorder tail.
fn build_stall_diagnostic(shared: &Shared) -> String {
    let m = &shared.metrics;
    let mut s = format!(
        "stall: {} live task(s), {} executed, {} created, {} freed, {} failed; \
         scheduler ~{} queued",
        m.live_tasks.value(),
        m.tasks_executed.value(),
        m.tasks_created.value(),
        m.tasks_freed.value(),
        m.tasks_failed.value(),
        shared.sched.approx_len(),
    );
    let nodes = shared.sched.node_stats();
    if !nodes.is_empty() {
        s.push_str(&format!("; node stats {nodes:?}"));
    }
    let frames = m.flight.frames();
    if let Some(last) = frames.last() {
        s.push_str(&format!(
            "; flight[{} frame(s), last @tick {}]",
            frames.len(),
            last.tick
        ));
    }
    s
}

/// Stall-watchdog monitor loop ([`RuntimeConfig::watchdog`]): while a
/// fallible run is active, trip when tasks are live but the executed
/// counter has not moved for the configured window. Tripping records a
/// diagnostic and raises `watchdog_tripped`; the run's poll loop turns
/// that into a [`FailureKind::WatchdogStall`] failure and returns
/// instead of hanging. Cancelled-body completions count as progress, so
/// a draining cancellation wave never trips the watchdog.
fn watchdog_loop(shared: &Shared, timeout: std::time::Duration) {
    let poll = (timeout / 4).max(std::time::Duration::from_millis(1));
    let mut last_executed = shared.metrics.tasks_executed.value();
    let mut last_progress = std::time::Instant::now();
    loop {
        std::thread::sleep(poll);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let executed = shared.metrics.tasks_executed.value();
        let idle = !shared.run_active.load(Ordering::Acquire)
            || shared.metrics.live_tasks.value() == 0
            || shared.watchdog_tripped.load(Ordering::Acquire);
        if executed != last_executed || idle {
            last_executed = executed;
            last_progress = std::time::Instant::now();
            continue;
        }
        if last_progress.elapsed() >= timeout {
            *shared.watchdog_diag.lock() = build_stall_diagnostic(shared);
            shared.metrics.watchdog_trips.inc(0);
            shared.watchdog_tripped.store(true, Ordering::Release);
        }
    }
}

/// Worker-thread main loop.
fn worker_loop(w: WorkerCtx) {
    let shared = Arc::clone(&w.shared);
    let mut idle = false;
    let mut backoff = Backoff::new();
    loop {
        let got = {
            let mut rec = w.recorder.borrow_mut();
            shared.sched.get_ready(w.id, Some(&mut rec))
        };
        match got {
            Some(t) => {
                if idle {
                    w.record(EventKind::IdleEnd, 0);
                    idle = false;
                }
                execute_task(&w, t.0);
                backoff.reset();
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                if !idle {
                    w.record(EventKind::IdleBegin, 0);
                    idle = true;
                    // Flush between tasks, as the paper's backend does.
                    w.recorder.borrow_mut().flush();
                }
                backoff.snooze();
            }
        }
        if let Some(noise) = &shared.noise {
            let mut rec = w.recorder.borrow_mut();
            noise.check(w.id as u16, &mut rec);
        }
    }
    // Recorder flushes on drop.
}

/// The task runtime. See the crate docs for an example.
pub struct Runtime {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
    main: WorkerCtx,
}

impl Runtime {
    /// Build a runtime and start its worker threads.
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(
            cfg.workers <= crate::sched::sync_sched::MAX_WORKERS,
            "at most {} workers",
            crate::sched::sync_sched::MAX_WORKERS
        );
        // The registry exists before the scheduler so the scheduler's
        // operation counters land in the same snapshot space.
        let metrics = Metrics::new(&cfg);
        let sched = make_scheduler(
            cfg.sched,
            cfg.workers,
            cfg.numa_nodes,
            cfg.policy,
            cfg.spsc_capacity,
            cfg.pop_cache,
            Some(&metrics.registry),
        );
        let deps = make_deps(cfg.deps);
        let alloc = make_allocator(cfg.alloc, cfg.workers + 1);
        // SAFETY(drop_shell): every pointer the slab retains is a fully
        // initialized (dead, reset) `Task` — `alloc_task` writes fresh
        // shells and `free_task` only recycles after `reset_for_recycle`.
        unsafe fn drop_task_shell(p: *mut u8) {
            unsafe { core::ptr::drop_in_place(p as *mut Task) }
        }
        let task_slab = TaskSlab::new(
            Layout::new::<Task>(),
            Arc::clone(&alloc),
            cfg.workers + 1,
            drop_task_shell,
        );
        let tracer = Tracer::new(cfg.workers, cfg.trace);
        let noise = cfg.noise.map(NoiseInjector::new);
        let topology = crate::platform::Topology::contiguous(cfg.workers, cfg.numa_nodes);
        let shared = Arc::new(Shared {
            topology,
            sched,
            deps,
            alloc,
            task_slab,
            tracer: tracer.clone(),
            noise,
            graph: Mutex::new(Vec::new()),
            graph_enabled: AtomicBool::new(cfg.record_graph),
            capture: Mutex::new(None),
            has_capture: AtomicBool::new(false),
            capture_generation: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            failures: Mutex::new(Vec::new()),
            failed_count: AtomicU64::new(0),
            fault_tick: AtomicU64::new(0),
            run_active: AtomicBool::new(false),
            watchdog_tripped: AtomicBool::new(false),
            watchdog_diag: Mutex::new(String::new()),
            metrics,
            cfg,
        });
        if shared.cfg.fault_plan.is_some() {
            install_fault_panic_hook();
        }
        let watchdog = shared.cfg.watchdog.map(|timeout| {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nanotask-watchdog".to_string())
                .spawn(move || watchdog_loop(&s, timeout))
                .expect("spawn watchdog")
        });
        let threads = (1..shared.cfg.workers)
            .map(|id| {
                let w = WorkerCtx::new(id, Arc::clone(&shared), tracer.recorder(id as u16));
                std::thread::Builder::new()
                    .name(format!("nanotask-w{id}"))
                    .spawn(move || worker_loop(w))
                    .expect("spawn worker")
            })
            .collect();
        let main = WorkerCtx::new(0, Arc::clone(&shared), tracer.recorder(0));
        Self {
            shared,
            threads,
            watchdog,
            main,
        }
    }

    /// Execute `root` as the root task on the calling thread (worker 0)
    /// and block until the entire task graph has completed.
    ///
    /// Infallible wrapper over [`Runtime::run_outcome`]: panics with
    /// [`RunOutcome::summary`] if any task failed or the watchdog
    /// tripped. (Before fault isolation existed, a failing body killed
    /// its worker and hung or aborted the process — the wrapper keeps
    /// the panicking contract while making it survivable upstream.)
    pub fn run(&self, root: impl FnOnce(&TaskCtx) + Send + 'static) {
        let outcome = self.run_outcome(root);
        assert!(
            outcome.is_ok(),
            "nanotask run failed: {}",
            outcome.summary()
        );
    }

    /// Execute `root` as the root task and report failures instead of
    /// panicking: every caught body panic becomes a
    /// [`TaskFailure`] and the failed task's transitive successors are
    /// cancelled (completion protocol intact, bodies skipped). See
    /// [`RunOutcome`].
    pub fn run_outcome(&self, root: impl FnOnce(&TaskCtx) + Send + 'static) -> RunOutcome {
        let shared = &self.shared;
        shared.failures.lock().clear();
        if shared.failed_count.load(Ordering::Acquire) > 0 {
            // A previous run failed: clear run-scoped poison state so
            // this run starts clean (no-op on the wait-free system).
            shared.deps.reset_faults();
        }
        shared.fault_tick.store(0, Ordering::Relaxed);
        shared.watchdog_tripped.store(false, Ordering::Release);
        let cancelled0 = shared.metrics.tasks_cancelled.value();
        shared.run_active.store(true, Ordering::Release);
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        shared.metrics.tasks_created.inc(0);
        shared.metrics.live_tasks.inc(0);
        let done = Arc::new(AtomicBool::new(false));
        let t = unsafe {
            let t = shared.alloc_task(
                0,
                id,
                "root",
                core::ptr::null_mut(),
                0,
                Box::new(root),
                vec![],
            );
            (*t).set_completion_flag(Arc::clone(&done));
            t
        };
        // The root has no dependencies: execute it right away on this
        // thread, then help until its subtree completes. The completion
        // flag lives outside task memory, so polling it races with
        // nothing even after the task object is reclaimed.
        execute_task(&self.main, t);
        let mut backoff = Backoff::new();
        let mut stalled = false;
        while !done.load(Ordering::Acquire) {
            if shared.watchdog_tripped.load(Ordering::Acquire) {
                // Stuck graph: abandon it (its tasks cannot drain by
                // definition of the trip) and fail the run instead of
                // hanging forever.
                stalled = true;
                break;
            }
            let got = {
                let mut rec = self.main.recorder.borrow_mut();
                shared.sched.get_ready(0, Some(&mut rec))
            };
            match got {
                Some(task) => {
                    execute_task(&self.main, task.0);
                    backoff.reset();
                }
                None => backoff.snooze(),
            }
            if let Some(noise) = &shared.noise {
                let mut rec = self.main.recorder.borrow_mut();
                noise.check(0, &mut rec);
            }
        }
        shared.run_active.store(false, Ordering::Release);
        self.main.recorder.borrow_mut().flush();
        let mut failures = std::mem::take(&mut *shared.failures.lock());
        if stalled {
            failures.push(TaskFailure {
                task: 0,
                label: "watchdog",
                worker: 0,
                message: std::mem::take(&mut *shared.watchdog_diag.lock()),
                kind: FailureKind::WatchdogStall,
            });
        }
        RunOutcome {
            failures,
            tasks_cancelled: shared.metrics.tasks_cancelled.value() - cancelled0,
            completed: !stalled,
        }
    }

    /// Runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.cfg
    }

    /// The realized worker→NUMA-node placement of this runtime.
    pub fn topology(&self) -> &crate::platform::Topology {
        &self.shared.topology
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RuntimeStats {
        let deps_deliveries = if let DepsKind::WaitFree = self.shared.cfg.deps {
            // Downcast through the concrete type to read its counters.
            let any: &dyn DependencySystem = &*self.shared.deps;
            let wf = unsafe {
                // SAFETY: kind() == WaitFree ⇒ the concrete type is
                // WaitFreeDeps (the factory builds no other).
                debug_assert_eq!(any.kind(), DepsKind::WaitFree);
                &*(any as *const dyn DependencySystem
                    as *const crate::deps::wait_free::WaitFreeDeps)
            };
            wf.stats()
        } else {
            (0, 0, 0)
        };
        let m = &self.shared.metrics;
        let mut alloc = self.shared.alloc.stats();
        // Fold the task-slab recycling counters into the allocator view:
        // one `AllocStats` carries both layers.
        let slab = self.shared.task_slab.stats();
        alloc.recycle_hits = slab.recycled;
        alloc.recycle_misses = slab.fresh;
        alloc.peak_live_tasks = slab.peak_live;
        RuntimeStats {
            tasks_created: m.tasks_created.value(),
            tasks_executed: m.tasks_executed.value(),
            tasks_freed: m.tasks_freed.value(),
            alloc,
            deps_deliveries,
        }
    }

    /// Task spawns served as recycled shells from the task slab
    /// (monotone).
    pub fn tasks_recycled(&self) -> u64 {
        self.shared.task_slab.stats().recycled
    }

    /// High-water mark of task-object memory: peak simultaneously live
    /// tasks × task-shell size (headers only; interior capacity such as
    /// decls buffers is owned by the shells and recycled with them).
    pub fn peak_task_bytes(&self) -> u64 {
        self.shared.task_slab.stats().peak_live * core::mem::size_of::<Task>() as u64
    }

    /// Aggregate counters plus scheduler-operation and fast-path
    /// counters — the machine-checkable evidence behind perf claims.
    pub fn run_report(&self) -> RunReport {
        let m = &self.shared.metrics;
        let mut sched = self.shared.sched.op_stats();
        // Runtime-side counter folded into the scheduler snapshot: the
        // scheduler never sees an inline-kept routed release (that is
        // the point), so it cannot count them itself.
        sched.inline_routed = m.inline_routed.value();
        RunReport {
            stats: self.stats(),
            sched,
            node_stats: self.shared.sched.node_stats(),
            inline_runs: m.inline_runs.value(),
            max_inline_depth: m.max_inline_depth.value(),
        }
    }

    /// The runtime's metrics registry: every counter family the runtime,
    /// the scheduler and (when attached) the replay engine maintain.
    /// Feed [`Runtime::metrics_snapshot`] to
    /// `nanotask_obs::prometheus::render` for text exposition.
    pub fn metrics_registry(&self) -> &Registry {
        &self.shared.metrics.registry
    }

    /// One consistent read of every registered metric. Publishes the
    /// current allocator pressure ([`AllocStats`], including task-slab
    /// recycling) into the alloc gauges first, so one scrape carries
    /// scheduler counters and allocator state together.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.shared.metrics.publish_alloc(&self.stats().alloc);
        self.shared.metrics.registry.snapshot()
    }

    /// Whether the sampled latency histograms are live
    /// ([`RuntimeConfig::metrics`]).
    pub fn metrics_enabled(&self) -> bool {
        self.shared.metrics.enabled
    }

    /// Flight-recorder contents, oldest first (empty when
    /// [`RuntimeConfig::flight_every`] is 0).
    pub fn flight_frames(&self) -> Vec<FlightFrame> {
        self.shared.metrics.flight.frames()
    }

    /// Collect the trace recorded so far (call between/after `run`s; only
    /// flushed events appear — workers flush when idle).
    pub fn trace(&self) -> Trace {
        self.shared.tracer.finish()
    }

    /// Drain the recorded dependency edges (requires `record_graph` or
    /// [`Runtime::set_graph_recording`]). Takes the accumulated edges out
    /// instead of cloning the whole `Vec` under the mutex; a second call
    /// without new recording returns an empty list.
    pub fn graph_edges(&self) -> Vec<GraphEdge> {
        std::mem::take(&mut *self.shared.graph.lock())
    }

    /// Turn dependency-edge recording on or off at runtime (the replay
    /// recorder instruments exactly one iteration this way).
    pub fn set_graph_recording(&self, on: bool) {
        self.shared.graph_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether dependency edges are currently being recorded.
    pub fn graph_recording(&self) -> bool {
        self.shared.graph_enabled.load(Ordering::Relaxed)
    }

    /// Install (or clear) the root-spawn capture hook. See
    /// [`SpawnCapture`] for the contract.
    pub fn set_spawn_capture(&self, cap: Option<Arc<dyn SpawnCapture>>) {
        let has = cap.is_some();
        *self.shared.capture.lock() = cap;
        self.shared
            .capture_generation
            .fetch_add(1, Ordering::Release);
        self.shared.has_capture.store(has, Ordering::Release);
    }

    /// Record a marker event on worker 0's trace stream (flushed
    /// immediately so phase boundaries are visible even mid-run).
    pub fn trace_mark(&self, kind: EventKind, payload: u64) {
        let mut rec = self.main.recorder.borrow_mut();
        rec.record(kind, payload);
        rec.flush();
    }

    /// Drop the recorded dependency edges (e.g. between `run`s when only
    /// the last program's graph is of interest).
    pub fn clear_graph_edges(&self) {
        self.shared.graph.lock().clear();
    }

    /// Number of task objects currently alive (diagnostics; 0 after all
    /// runs completed and chains were closed).
    pub fn live_tasks(&self) -> usize {
        self.shared.metrics.live_tasks.value() as usize
    }

    /// Cumulative nested-spawn count (see [`TaskCtx::nested_spawn_count`]).
    pub fn nested_spawn_count(&self) -> u64 {
        self.shared.metrics.nested_spawns.value()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            if t.join().is_err() {
                // Task-body panics are caught at the body seam, so a
                // dead worker means runtime-internal failure. Record it
                // (visible to `metrics_snapshot` readers and any
                // subsequent outcome drain) instead of aborting the
                // process from a destructor.
                self.shared.metrics.tasks_failed.inc(0);
                self.shared.failed_count.fetch_add(1, Ordering::AcqRel);
                self.shared.failures.lock().push(TaskFailure {
                    task: 0,
                    label: "worker",
                    worker: 0,
                    message: "worker thread terminated by panic outside a task body".to_string(),
                    kind: FailureKind::WorkerLost,
                });
            }
        }
        if let Some(wd) = self.watchdog.take() {
            let _ = wd.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::RedOp;
    use std::sync::atomic::AtomicU64 as TestAtomicU64;

    fn small(cfg: RuntimeConfig) -> Runtime {
        Runtime::new(cfg.workers(3))
    }

    #[test]
    fn run_executes_root() {
        let rt = small(RuntimeConfig::optimized());
        let hit = Arc::new(AtomicBool::new(false));
        let h = Arc::clone(&hit);
        rt.run(move |_| h.store(true, Ordering::SeqCst));
        assert!(hit.load(Ordering::SeqCst));
    }

    #[test]
    fn spawned_tasks_all_execute() {
        let rt = small(RuntimeConfig::optimized());
        let count = Arc::new(TestAtomicU64::new(0));
        let c = Arc::clone(&count);
        rt.run(move |ctx| {
            for _ in 0..100 {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new(), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn dependencies_order_writes() {
        // A chain of writers incrementing a plain (non-atomic) counter:
        // only correct if the runtime serializes them.
        let rt = small(RuntimeConfig::optimized());
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(data);
        rt.run(move |ctx| {
            for _ in 0..50 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1
                });
            }
        });
        assert_eq!(unsafe { *data }, 50);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn taskwait_blocks_until_children_done() {
        let rt = small(RuntimeConfig::optimized());
        let flag = Arc::new(AtomicBool::new(false));
        let ok = Arc::new(AtomicBool::new(false));
        let (f, o) = (Arc::clone(&flag), Arc::clone(&ok));
        rt.run(move |ctx| {
            let f2 = Arc::clone(&f);
            ctx.spawn(Deps::new(), move |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                f2.store(true, Ordering::SeqCst);
            });
            ctx.taskwait();
            o.store(f.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        assert!(ok.load(Ordering::SeqCst), "taskwait returned before child");
    }

    #[test]
    fn reduction_sums_across_tasks() {
        let rt = small(RuntimeConfig::optimized());
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let p = crate::SendPtr::new(acc);
        rt.run(move |ctx| {
            for i in 0..32 {
                ctx.spawn(
                    Deps::new().reduce_addr(p.addr(), 8, RedOp::SumF64),
                    move |c| unsafe {
                        let slot = c.red_slot(&*(p.addr() as *const f64));
                        *slot += (i + 1) as f64;
                    },
                );
            }
            // A reader after the chain forces combination.
            ctx.spawn(Deps::new().read_addr(p.addr()), move |_| {});
        });
        assert_eq!(unsafe { *acc }, 528.0); // 1+2+..+32
        unsafe { drop(Box::from_raw(acc)) };
    }

    #[test]
    fn all_ablation_configs_run() {
        for cfg in RuntimeConfig::ablations() {
            let label = cfg.label;
            let rt = Runtime::new(cfg.workers(2));
            let count = Arc::new(TestAtomicU64::new(0));
            let c = Arc::clone(&count);
            let data = Box::leak(Box::new(0u64)) as *mut u64;
            let p = crate::SendPtr::new(data);
            rt.run(move |ctx| {
                for _ in 0..20 {
                    let c2 = Arc::clone(&c);
                    ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {
                        unsafe { *p.get() += 1 };
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 20, "config {label}");
            assert_eq!(unsafe { *data }, 20, "config {label}");
            unsafe { drop(Box::from_raw(data)) };
        }
    }

    #[test]
    fn stats_track_tasks() {
        let rt = small(RuntimeConfig::optimized());
        rt.run(|ctx| {
            for _ in 0..10 {
                ctx.spawn(Deps::new(), |_| {});
            }
        });
        let s = rt.stats();
        assert_eq!(s.tasks_executed, 11); // 10 + root
        assert_eq!(s.tasks_created, 11);
    }

    #[test]
    fn trace_records_task_events() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2).tracing(true));
        rt.run(|ctx| {
            for _ in 0..5 {
                ctx.spawn(Deps::new(), |_| {});
            }
        });
        let trace = rt.trace();
        let starts = trace
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::TaskStart)
            .count();
        assert!(starts >= 6, "root + 5 tasks traced, got {starts}");
    }

    #[test]
    fn graph_edges_recorded() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(1).graph(true));
        let x = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(x);
        rt.run(move |ctx| {
            for _ in 0..4 {
                ctx.spawn_labeled("w", Deps::new().readwrite_addr(p.addr()), move |_| {});
            }
        });
        let edges = rt.graph_edges();
        assert_eq!(edges.len(), 3, "3 successor edges in a 4-task chain");
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn nested_spawn_and_wait() {
        let rt = small(RuntimeConfig::optimized());
        let count = Arc::new(TestAtomicU64::new(0));
        let c = Arc::clone(&count);
        rt.run(move |ctx| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new(), move |inner| {
                    for _ in 0..4 {
                        let c = Arc::clone(&c);
                        inner.spawn(Deps::new(), move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    inner.taskwait();
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn sequential_runs_reuse_runtime() {
        let rt = small(RuntimeConfig::optimized());
        let count = Arc::new(TestAtomicU64::new(0));
        for _ in 0..3 {
            let c = Arc::clone(&count);
            rt.run(move |ctx| {
                for _ in 0..10 {
                    let c = Arc::clone(&c);
                    ctx.spawn(Deps::new(), move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn priority_policy_orders_execution() {
        // Single worker: the root queues everything, then the helping
        // loop must pop strictly by priority (FIFO among equals).
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(1)
                .with_policy(crate::sched::Policy::Priority),
        );
        let order: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        rt.run(move |ctx| {
            for &p in &[1, 5, 3, 5, 2, 4] {
                let o = Arc::clone(&o);
                ctx.spawn_prioritized("p", p, Deps::new(), move |_| {
                    o.lock().push(p);
                });
            }
        });
        assert_eq!(*order.lock(), vec![5, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn priority_policy_on_delegation_and_central() {
        for sched in [
            SchedKind::Delegation,
            SchedKind::Central(crate::sched::LockKind::PtLock),
        ] {
            let rt = Runtime::new(
                RuntimeConfig::optimized()
                    .scheduler(sched)
                    .workers(3)
                    .with_policy(crate::sched::Policy::Priority),
            );
            let count = Arc::new(TestAtomicU64::new(0));
            let c = Arc::clone(&count);
            rt.run(move |ctx| {
                for i in 0..200 {
                    let c = Arc::clone(&c);
                    ctx.spawn_prioritized("p", i % 7, Deps::new(), move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 200, "{sched:?}");
        }
    }

    #[test]
    fn taskwait_on_waits_for_conflicting_tasks_only() {
        let rt = small(RuntimeConfig::optimized());
        let x = Box::leak(Box::new(0u64)) as *mut u64;
        let y = Box::leak(Box::new(0u64)) as *mut u64;
        let px = crate::SendPtr::new(x);
        let py = crate::SendPtr::new(y);
        let unrelated_done = Arc::new(AtomicBool::new(false));
        let observed = Arc::new(TestAtomicU64::new(u64::MAX));
        let (u, o) = (Arc::clone(&unrelated_done), Arc::clone(&observed));
        rt.run(move |ctx| {
            // Conflicting chain on x.
            for _ in 0..10 {
                ctx.spawn(Deps::new().readwrite_addr(px.addr()), move |_| unsafe {
                    *px.get() += 1;
                });
            }
            // A slow unrelated task on y.
            let u2 = Arc::clone(&u);
            ctx.spawn(Deps::new().readwrite_addr(py.addr()), move |_| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                u2.store(true, Ordering::SeqCst);
            });
            // Wait only on x: all 10 increments visible; the slow task
            // may still be running.
            ctx.taskwait_on(Deps::new().read_addr(px.addr()));
            o.store(unsafe { *px.get() }, Ordering::SeqCst);
        });
        assert_eq!(
            observed.load(Ordering::SeqCst),
            10,
            "all x-writers finished"
        );
        assert!(
            unrelated_done.load(Ordering::SeqCst),
            "run() still waits for everything"
        );
        unsafe {
            drop(Box::from_raw(x));
            drop(Box::from_raw(y));
        }
    }

    #[test]
    fn taskwait_on_with_no_conflicts_returns_quickly() {
        let rt = small(RuntimeConfig::optimized());
        let x = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(x);
        rt.run(move |ctx| {
            ctx.taskwait_on(Deps::new().read_addr(p.addr()));
            unsafe { *p.get() = 7 };
        });
        assert_eq!(unsafe { *x }, 7);
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn fast_path_runs_chains_inline() {
        // A pure readwrite chain: with the fast path on, every activation
        // after the head should bypass the queue.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2).fast_path(true));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(data);
        rt.run(move |ctx| {
            for _ in 0..100 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 100);
        let report = rt.run_report();
        assert!(
            report.inline_runs >= 50,
            "chain mostly ran inline: {report:?}"
        );
        assert!(report.max_inline_depth <= 64);
        assert_eq!(rt.live_tasks(), 0, "fast path leaks no tasks");
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn fast_path_correct_on_all_ablations_and_knob_combos() {
        for base in RuntimeConfig::ablations() {
            for (inline, batch) in [(true, false), (false, true), (true, true)] {
                let label = base.label;
                let rt = Runtime::new(
                    base.clone()
                        .workers(3)
                        .with_inline_successors(inline)
                        .with_batched_release(batch)
                        .with_pop_cache(2),
                );
                let count = Arc::new(TestAtomicU64::new(0));
                let c = Arc::clone(&count);
                let data = Box::leak(Box::new(0u64)) as *mut u64;
                let p = crate::SendPtr::new(data);
                rt.run(move |ctx| {
                    for _ in 0..40 {
                        let c2 = Arc::clone(&c);
                        ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {
                            unsafe { *p.get() += 1 };
                            c2.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    // Independent tasks too (batch-released by register).
                    for _ in 0..10 {
                        let c2 = Arc::clone(&c);
                        ctx.spawn(Deps::new(), move |_| {
                            c2.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                assert_eq!(
                    count.load(Ordering::Relaxed),
                    50,
                    "{label} inline={inline} batch={batch}"
                );
                assert_eq!(unsafe { *data }, 40, "{label}");
                assert_eq!(rt.live_tasks(), 0, "{label}");
                if !batch {
                    // The inline-only ablation must not batch covertly.
                    assert_eq!(
                        rt.run_report().sched.batch_adds,
                        0,
                        "{label} inline={inline}: no batches with batched_release off"
                    );
                }
                unsafe { drop(Box::from_raw(data)) };
            }
        }
    }

    #[test]
    fn inline_depth_bound_is_respected() {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(1)
                .fast_path(true)
                .with_inline_max_depth(4),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(data);
        rt.run(move |ctx| {
            for _ in 0..64 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 64);
        let report = rt.run_report();
        assert!(report.inline_runs > 0, "fast path engaged");
        assert!(
            report.max_inline_depth <= 4,
            "depth bound violated: {}",
            report.max_inline_depth
        );
        assert!(
            report.sched.pops > 0,
            "bounded chains must return to the scheduler"
        );
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn taskwait_progresses_under_inline_chains() {
        // The depth bound guarantees a task-waiting worker re-checks its
        // condition at bounded intervals even when every completion keeps
        // releasing an inline-able successor. A tiny bound + a single
        // worker is the worst case: the root's taskwait must still return.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(1)
                .fast_path(true)
                .with_inline_max_depth(2),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(data);
        let observed = Arc::new(TestAtomicU64::new(0));
        let o = Arc::clone(&observed);
        rt.run(move |ctx| {
            for _ in 0..500 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
            ctx.taskwait();
            o.store(unsafe { *p.get() }, Ordering::SeqCst);
        });
        assert_eq!(
            observed.load(Ordering::SeqCst),
            500,
            "taskwait saw every chained child complete"
        );
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn fast_path_respects_priority_pick() {
        // Inline pick under the priority policy keeps the highest-priority
        // released task; the rest still execute.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .fast_path(true)
                .with_policy(crate::sched::Policy::Priority),
        );
        let count = Arc::new(TestAtomicU64::new(0));
        let c = Arc::clone(&count);
        rt.run(move |ctx| {
            for i in 0..100 {
                let c = Arc::clone(&c);
                ctx.spawn_prioritized("p", i % 5, Deps::new(), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn fast_path_reductions_and_taskwait_on() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3).fast_path(true));
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let p = crate::SendPtr::new(acc);
        rt.run(move |ctx| {
            for i in 0..32 {
                ctx.spawn(
                    Deps::new().reduce_addr(p.addr(), 8, RedOp::SumF64),
                    move |c| unsafe {
                        let slot = c.red_slot(&*(p.addr() as *const f64));
                        *slot += (i + 1) as f64;
                    },
                );
            }
            ctx.taskwait_on(Deps::new().read_addr(p.addr()));
            assert_eq!(unsafe { *p.get() }, 528.0);
        });
        assert_eq!(unsafe { *acc }, 528.0);
        unsafe { drop(Box::from_raw(acc)) };
    }

    #[test]
    fn run_report_counts_scheduler_ops() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        rt.run(|ctx| {
            for _ in 0..20 {
                ctx.spawn(Deps::new(), |_| {});
            }
        });
        let report = rt.run_report();
        assert_eq!(report.inline_runs, 0, "fast path off by default");
        assert_eq!(report.sched.batch_adds, 0, "no batches with feature off");
        assert_eq!(report.sched.adds, 20);
        assert_eq!(report.sched.pops, 20);
        assert_eq!(report.queue_bypass_fraction(), 0.0);
    }

    #[test]
    fn tasks_reclaimed_after_run() {
        let rt = small(RuntimeConfig::optimized());
        let x = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(x);
        rt.run(move |ctx| {
            for _ in 0..50 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        // The root closed its domain when its body+children finished, so
        // every chain terminated and every task should be reclaimed.
        assert_eq!(rt.live_tasks(), 0, "all task objects reclaimed");
        let s = rt.stats();
        assert_eq!(s.tasks_created, s.tasks_freed);
        unsafe { drop(Box::from_raw(x)) };
    }

    /// A panicking body mid-chain is isolated, reported, and cancels
    /// exactly its transitive successors — on both dependency systems —
    /// and the runtime stays fully usable afterwards.
    #[test]
    fn body_panic_cancels_successors_and_reports() {
        for cfg in [
            RuntimeConfig::optimized(),
            RuntimeConfig::without_waitfree_deps(),
        ] {
            let label = cfg.label;
            // Armed-but-never-firing plan: installs the quiet panic hook.
            let rt = small(cfg.with_fault_plan(FaultPlan::never()));
            let data = Box::leak(Box::new(0u64)) as *mut u64;
            let p = crate::SendPtr::new(data);
            let outcome = rt.run_outcome(move |ctx| {
                for i in 0..10 {
                    ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {
                        if i == 3 {
                            std::panic::panic_any(format!("{FAULT_PANIC_PREFIX}: planted"));
                        }
                        unsafe { *p.get() += 1 };
                    });
                }
            });
            assert_eq!(outcome.failures.len(), 1, "{label}: {}", outcome.summary());
            assert_eq!(outcome.failures[0].kind, FailureKind::Panic);
            assert_eq!(outcome.failures[0].label, "task");
            assert_eq!(outcome.tasks_cancelled, 6, "{label}: tasks 4..9 cancelled");
            assert!(outcome.completed, "{label}");
            assert_eq!(unsafe { *data }, 3, "{label}: predecessors ran");
            assert_eq!(rt.live_tasks(), 0, "{label}: no leaked tasks");
            let s = rt.stats();
            assert_eq!(s.tasks_created, s.tasks_freed, "{label}");
            // The runtime survives: a fault-free run works afterwards.
            let again = rt.run_outcome(move |ctx| {
                for _ in 0..10 {
                    ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                        *p.get() += 1;
                    });
                }
            });
            assert!(again.is_ok(), "{label}: {}", again.summary());
            assert_eq!(again.tasks_cancelled, 0, "{label}");
            assert_eq!(unsafe { *data }, 13, "{label}");
            unsafe { drop(Box::from_raw(data)) };
        }
    }

    /// `FaultPlan::panic_at` fires in the nth eligible body, counted per
    /// run (deterministic on a single worker).
    #[test]
    fn fault_plan_injects_deterministically() {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(1)
                .with_fault_plan(FaultPlan::panic_at(2)),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = crate::SendPtr::new(data);
        for round in 0..2 {
            let outcome = rt.run_outcome(move |ctx| {
                for _ in 0..8 {
                    ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                        *p.get() += 1;
                    });
                }
            });
            assert_eq!(outcome.failures.len(), 1, "round {round}");
            assert!(
                outcome.failures[0].message.starts_with(FAULT_PANIC_PREFIX),
                "round {round}: {}",
                outcome.failures[0].message
            );
            assert_eq!(outcome.tasks_cancelled, 5, "round {round}: tasks 3..8");
            assert_eq!(rt.live_tasks(), 0, "round {round}");
        }
        // Two runs, two predecessor pairs: the tick reset per run.
        assert_eq!(unsafe { *data }, 4);
        unsafe { drop(Box::from_raw(data)) };
    }

    /// The watchdog converts a never-completing graph into a
    /// `WatchdogStall` failure instead of hanging the run.
    #[test]
    fn watchdog_trips_on_stuck_graph() {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_watchdog(std::time::Duration::from_millis(50)),
        );
        let outcome = rt.run_outcome(|ctx| {
            // A held task that is never released: the graph can't drain.
            let _stuck = ctx.spawn_held("stuck", 0, vec![], |_| {});
        });
        assert_eq!(outcome.failures.len(), 1, "{}", outcome.summary());
        assert_eq!(outcome.failures[0].kind, FailureKind::WatchdogStall);
        assert!(
            outcome.failures[0].message.contains("live task"),
            "diagnostic attached: {}",
            outcome.failures[0].message
        );
        assert!(!outcome.completed);
        assert_eq!(
            rt.metrics_snapshot()
                .counter("nanotask_watchdog_trips_total"),
            Some(1)
        );
    }

    /// The infallible `run` wrapper panics with the failure summary.
    #[test]
    fn run_wrapper_panics_on_failure() {
        let rt = small(RuntimeConfig::optimized().with_fault_plan(FaultPlan::never()));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|ctx| {
                ctx.spawn(Deps::new(), |_| {
                    std::panic::panic_any(format!("{FAULT_PANIC_PREFIX}: planted"));
                });
            });
        }));
        assert!(caught.is_err(), "run() surfaces the failure by panicking");
        // The runtime itself survived the failed run.
        assert_eq!(rt.live_tasks(), 0);
        rt.run(|ctx| {
            ctx.spawn(Deps::new(), |_| {});
        });
    }

    /// An armed but never-firing plan plus watchdog changes no observable
    /// life-cycle behavior on a fault-free run.
    #[test]
    fn fault_free_run_with_armed_plan_is_identical() {
        let run_counters = |cfg: RuntimeConfig| {
            let rt = Runtime::new(cfg.workers(1));
            let outcome = rt.run_outcome(|ctx| {
                for _ in 0..25 {
                    ctx.spawn(Deps::new(), |_| {});
                }
            });
            assert!(outcome.is_ok(), "{}", outcome.summary());
            let s = rt.stats();
            (s.tasks_created, s.tasks_executed, s.tasks_freed)
        };
        let plain = run_counters(RuntimeConfig::optimized());
        let armed = run_counters(
            RuntimeConfig::optimized()
                .with_fault_plan(FaultPlan::never())
                .with_watchdog(std::time::Duration::from_secs(5)),
        );
        assert_eq!(plain, armed);
    }
}
