//! Task reductions (OmpSs-2 treats reductions as data accesses, §2).
//!
//! Consecutive reduction accesses of the same operation on the same
//! address form a *chain* that executes concurrently: each participating
//! worker accumulates into a private slot, and the runtime folds the slots
//! into the target exactly once, when satisfiability leaves the chain
//! (a non-reduction successor links, or the dependency domain closes).
//! Dot product, Gauss–Seidel's residual and HPCCG's dot products (§6.1)
//! all use this machinery.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, Ordering};

/// Reduction operations supported by the runtime. Workloads in the paper
/// only need floating-point/integer sums, but min/max come for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// `f64` addition, identity 0.0.
    SumF64,
    /// `f64` maximum, identity -inf.
    MaxF64,
    /// `f64` minimum, identity +inf.
    MinF64,
    /// `u64` addition, identity 0.
    SumU64,
    /// `i64` addition, identity 0.
    SumI64,
}

impl RedOp {
    /// Element size in bytes.
    pub fn elem_size(self) -> usize {
        8
    }

    /// Write the identity element over `len` bytes (a whole slot).
    ///
    /// # Safety
    /// `dst` must be valid for `len` bytes, `len` a multiple of
    /// [`RedOp::elem_size`], and suitably aligned.
    pub unsafe fn fill_identity(self, dst: *mut u8, len: usize) {
        let n = len / self.elem_size();
        unsafe {
            match self {
                RedOp::SumF64 => {
                    let p = dst as *mut f64;
                    for i in 0..n {
                        p.add(i).write(0.0);
                    }
                }
                RedOp::MaxF64 => {
                    let p = dst as *mut f64;
                    for i in 0..n {
                        p.add(i).write(f64::NEG_INFINITY);
                    }
                }
                RedOp::MinF64 => {
                    let p = dst as *mut f64;
                    for i in 0..n {
                        p.add(i).write(f64::INFINITY);
                    }
                }
                RedOp::SumU64 => {
                    let p = dst as *mut u64;
                    for i in 0..n {
                        p.add(i).write(0);
                    }
                }
                RedOp::SumI64 => {
                    let p = dst as *mut i64;
                    for i in 0..n {
                        p.add(i).write(0);
                    }
                }
            }
        }
    }

    /// Combine `src` into `dst` element-wise over `len` bytes.
    ///
    /// # Safety
    /// Both pointers valid for `len` bytes, properly aligned, non-aliasing.
    pub unsafe fn combine(self, dst: *mut u8, src: *const u8, len: usize) {
        let n = len / self.elem_size();
        unsafe {
            match self {
                RedOp::SumF64 => {
                    let d = dst as *mut f64;
                    let s = src as *const f64;
                    for i in 0..n {
                        *d.add(i) += *s.add(i);
                    }
                }
                RedOp::MaxF64 => {
                    let d = dst as *mut f64;
                    let s = src as *const f64;
                    for i in 0..n {
                        let v = *s.add(i);
                        if v > *d.add(i) {
                            *d.add(i) = v;
                        }
                    }
                }
                RedOp::MinF64 => {
                    let d = dst as *mut f64;
                    let s = src as *const f64;
                    for i in 0..n {
                        let v = *s.add(i);
                        if v < *d.add(i) {
                            *d.add(i) = v;
                        }
                    }
                }
                RedOp::SumU64 => {
                    let d = dst as *mut u64;
                    let s = src as *const u64;
                    for i in 0..n {
                        *d.add(i) = (*d.add(i)).wrapping_add(*s.add(i));
                    }
                }
                RedOp::SumI64 => {
                    let d = dst as *mut i64;
                    let s = src as *const i64;
                    for i in 0..n {
                        *d.add(i) = (*d.add(i)).wrapping_add(*s.add(i));
                    }
                }
            }
        }
    }
}

/// One private accumulation slot (per worker).
struct Slot {
    init: AtomicBool,
    data: UnsafeCell<Vec<u8>>,
}

// Slots are indexed by worker id; each worker touches only its own slot
// until combination, which happens after the chain quiesced.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

/// Shared state of one reduction chain: the target region and the lazy
/// per-worker private slots.
pub struct ReductionInfo {
    /// Target region base address.
    pub addr: usize,
    /// Region length in bytes.
    pub len: usize,
    /// The operation.
    pub op: RedOp,
    slots: Box<[Slot]>,
    combined: AtomicBool,
}

impl ReductionInfo {
    /// Create chain state for `nworkers` potential participants.
    pub fn new(addr: usize, len: usize, op: RedOp, nworkers: usize) -> Self {
        assert!(
            len.is_multiple_of(op.elem_size()),
            "region not a multiple of element size"
        );
        let slots = (0..nworkers.max(1))
            .map(|_| Slot {
                init: AtomicBool::new(false),
                data: UnsafeCell::new(Vec::new()),
            })
            .collect();
        Self {
            addr,
            len,
            op,
            slots,
            combined: AtomicBool::new(false),
        }
    }

    /// The private slot of `worker`, identity-initialised on first use.
    ///
    /// # Safety
    /// Each worker id must be used by at most one thread at a time, and
    /// not concurrently with [`ReductionInfo::combine_into_target`].
    pub unsafe fn slot(&self, worker: usize) -> *mut u8 {
        let slot = &self.slots[worker % self.slots.len()];
        let data = unsafe { &mut *slot.data.get() };
        if !slot.init.load(Ordering::Acquire) {
            data.resize(self.len, 0);
            unsafe { self.op.fill_identity(data.as_mut_ptr(), self.len) };
            slot.init.store(true, Ordering::Release);
        }
        data.as_mut_ptr()
    }

    /// Fold every initialised slot into the target region. Called exactly
    /// once, by the delivery that moves satisfiability out of the chain.
    ///
    /// # Safety
    /// The target region must be exclusively owned (guaranteed by the
    /// dependency protocol: the chain holds WRITE_SAT and every
    /// participant completed) and all slot-writing finished.
    pub unsafe fn combine_into_target(&self) {
        if self.combined.swap(true, Ordering::AcqRel) {
            debug_assert!(false, "reduction combined twice");
            return;
        }
        let dst = self.addr as *mut u8;
        for slot in self.slots.iter() {
            if slot.init.load(Ordering::Acquire) {
                let data = unsafe { &*slot.data.get() };
                unsafe { self.op.combine(dst, data.as_ptr(), self.len) };
            }
        }
    }

    /// Whether combination already happened (diagnostics/tests).
    pub fn is_combined(&self) -> bool {
        self.combined.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_f64_identity_and_combine() {
        let mut target = 10.0f64;
        let info = ReductionInfo::new(&mut target as *mut f64 as usize, 8, RedOp::SumF64, 4);
        unsafe {
            *(info.slot(0) as *mut f64) += 1.5;
            *(info.slot(2) as *mut f64) += 2.5;
            info.combine_into_target();
        }
        assert_eq!(target, 14.0);
        assert!(info.is_combined());
    }

    #[test]
    fn max_f64() {
        let mut target = 1.0f64;
        let info = ReductionInfo::new(&mut target as *mut f64 as usize, 8, RedOp::MaxF64, 2);
        unsafe {
            *(info.slot(0) as *mut f64) = 5.0;
            *(info.slot(1) as *mut f64) = 3.0;
            info.combine_into_target();
        }
        assert_eq!(target, 5.0);
    }

    #[test]
    fn min_f64() {
        let mut target = 1.0f64;
        let info = ReductionInfo::new(&mut target as *mut f64 as usize, 8, RedOp::MinF64, 2);
        unsafe {
            *(info.slot(0) as *mut f64) = -2.0;
            info.combine_into_target();
        }
        assert_eq!(target, -2.0);
    }

    #[test]
    fn sum_u64_array_region() {
        let mut target = [1u64, 2, 3];
        let info = ReductionInfo::new(target.as_mut_ptr() as usize, 24, RedOp::SumU64, 2);
        unsafe {
            let s0 = info.slot(0) as *mut u64;
            *s0 = 10;
            *s0.add(2) = 30;
            let s1 = info.slot(1) as *mut u64;
            *s1.add(1) = 20;
            info.combine_into_target();
        }
        assert_eq!(target, [11, 22, 33]);
    }

    #[test]
    fn sum_i64_wraps() {
        let mut target = -5i64;
        let info = ReductionInfo::new(&mut target as *mut i64 as usize, 8, RedOp::SumI64, 1);
        unsafe {
            *(info.slot(0) as *mut i64) = 7;
            info.combine_into_target();
        }
        assert_eq!(target, 2);
    }

    #[test]
    fn untouched_slots_do_not_contribute() {
        let mut target = 1.0f64;
        let info = ReductionInfo::new(&mut target as *mut f64 as usize, 8, RedOp::SumF64, 8);
        unsafe {
            *(info.slot(3) as *mut f64) = 4.0;
            info.combine_into_target();
        }
        assert_eq!(target, 5.0);
    }

    #[test]
    fn worker_ids_wrap_to_slot_count() {
        let mut target = 0.0f64;
        let info = ReductionInfo::new(&mut target as *mut f64 as usize, 8, RedOp::SumF64, 2);
        unsafe {
            *(info.slot(0) as *mut f64) += 1.0;
            *(info.slot(2) as *mut f64) += 1.0; // wraps onto slot 0
            info.combine_into_target();
        }
        assert_eq!(target, 2.0);
    }
}
