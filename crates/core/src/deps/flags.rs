//! Flag algebra of the Atomic State Machine (§2.2–2.3 of the paper).
//!
//! Each access's state is one `u64`: two low bits encode the (immutable)
//! access type, the rest are *monotone* state bits — they are only ever
//! set, never cleared, which is the property the paper's wait-freedom
//! proof rests on (Definition 2.2: a delivery is `F ← F ∪ M`).
//!
//! All decision logic (readiness, propagation guards, the terminal
//! predicate that licenses reclamation) is a pure function of flag words,
//! so every transition can be unit-tested without any concurrency, and
//! the delivery engine in [`crate::deps::wait_free`] stays a thin loop.
//!
//! A *crossing* of a monotone predicate `P` is the unique delivery whose
//! `fetch_or` transitions `P(old) = false` to `P(new) = true`; since flags
//! are monotone, exactly one delivery crosses each predicate, which is how
//! every propagation fires exactly once without compare-and-swap loops.

/// Access type stored in the two lowest bits.
pub const TYPE_MASK: u64 = 0b11;
/// Read access.
pub const TYPE_READ: u64 = 0b00;
/// Write access.
pub const TYPE_WRITE: u64 = 0b01;
/// Read-write access.
pub const TYPE_READWRITE: u64 = 0b10;
/// Reduction access.
pub const TYPE_REDUCTION: u64 = 0b11;

/// All prior writers have finished: the data is readable.
pub const READ_SAT: u64 = 1 << 2;
/// All prior accesses have finished: the data is writable.
pub const WRITE_SAT: u64 = 1 << 3;
/// The owning task's body finished (delivered by unregister).
pub const COMPLETE: u64 = 1 << 4;
/// A child access to the same address was linked below this access.
pub const CHILD_LINKED: u64 = 1 << 5;
/// The child subtree for this address has fully finished.
pub const CHILD_DONE: u64 = 1 << 6;
/// The owner finished without any child access to this address.
pub const NO_MORE_CHILD: u64 = 1 << 7;
/// A successor access was linked after this one.
pub const SUCC_LINKED: u64 = 1 << 8;
/// ... and that successor is a Read (enables early read propagation).
pub const SUCC_READER: u64 = 1 << 9;
/// ... and that successor is a reduction of the same operation.
pub const SUCC_SAME_RED: u64 = 1 << 10;
/// ... and that successor is a reduction (any operation).
pub const SUCC_RED: u64 = 1 << 11;
/// The domain closed: no successor will ever be linked.
pub const NO_MORE_SUCC: u64 = 1 << 12;
/// A notify-up pointer was installed together with NO_MORE_SUCC.
pub const HAS_NOTIFY_UP: u64 = 1 << 13;
/// ... and the notify-up target is a same-operation reduction.
pub const UP_SAME_RED: u64 = 1 << 14;
/// Reduction-chain token: every earlier reduction of this chain finished.
pub const RED_TOKEN: u64 = 1 << 15;
/// Child access is a reduction (set with CHILD_LINKED).
pub const CHILD_RED: u64 = 1 << 16;

// ---- delivery acknowledgements (the `flagsAfterPropagation` of
// ---- Listing 2): each records that a propagation message this access
// ---- originated has been fully delivered, so the terminal predicate can
// ---- wait for in-flight work.

/// Early READ_SAT was forwarded to the successor.
pub const ACK_R_SUCC: u64 = 1 << 17;
/// Early WRITE_SAT was forwarded to a same-op reduction successor.
pub const ACK_W_SUCC_EARLY: u64 = 1 << 18;
/// READ_SAT (+ token) was forwarded to the child chain head.
pub const ACK_R_CHILD: u64 = 1 << 19;
/// WRITE_SAT was forwarded to the child chain head.
pub const ACK_W_CHILD: u64 = 1 << 20;
/// The final propagation to the successor was delivered.
pub const ACK_SUCC: u64 = 1 << 21;
/// The completion report to the parent (or the root no-op) was delivered.
pub const ACK_PARENT: u64 = 1 << 22;

/// The owning task of a *predecessor* access failed (or was itself
/// poisoned): this access's task must be cancelled. Rides the final
/// successor propagation only — never the early read/write forwards
/// (those successors may legitimately already be running) and never the
/// child chain (children are not successors). Monotone like every other
/// state bit and referenced by no readiness/terminal predicate, so the
/// wait-freedom and reclamation arguments are unaffected.
pub const POISON: u64 = 1 << 23;

/// Number of distinct state flags (|F| in the paper's Lemma 2.3: an access
/// can receive at most this many non-empty messages).
pub const FLAG_COUNT: u32 = 22;

/// Extract the type bits.
#[inline]
pub fn type_of(f: u64) -> u64 {
    f & TYPE_MASK
}

/// True if the flags describe a reduction access.
#[inline]
pub fn is_reduction(f: u64) -> bool {
    type_of(f) == TYPE_REDUCTION
}

/// True if the flags describe a read access.
#[inline]
pub fn is_read(f: u64) -> bool {
    type_of(f) == TYPE_READ
}

/// Satisfiability needed for the owning task to run, per access type:
/// reads need readability; everything else needs exclusive ownership.
#[inline]
pub fn is_satisfied(f: u64) -> bool {
    match type_of(f) {
        TYPE_READ => f & READ_SAT != 0,
        _ => f & (READ_SAT | WRITE_SAT) == (READ_SAT | WRITE_SAT),
    }
}

/// The access and (for this address) its whole child subtree finished,
/// with full satisfiability — the precondition for releasing successors.
/// Reductions additionally need the chain token (all earlier same-chain
/// reductions finished) so combination happens before release.
#[inline]
pub fn is_fully_done(f: u64) -> bool {
    let base = READ_SAT | WRITE_SAT | COMPLETE;
    if f & base != base {
        return false;
    }
    if f & (CHILD_DONE | NO_MORE_CHILD) == 0 {
        return false;
    }
    if is_reduction(f) && f & RED_TOKEN == 0 {
        return false;
    }
    true
}

/// Terminal predicate: *no further message can ever be delivered to this
/// access*, so its removal reference may be dropped. Monotone in `f`; the
/// unique delivery that crosses it performs the drop.
///
/// Every message class an access can receive is gated here:
/// satisfiabilities and token from the predecessor, completion from its
/// own unregister, linkage messages from the (single) creator thread,
/// child completion from the child chain, and the acknowledgement
/// self-messages of every propagation this access itself can originate.
#[inline]
pub fn is_terminal(f: u64) -> bool {
    let base = READ_SAT | WRITE_SAT | COMPLETE;
    if f & base != base {
        return false;
    }
    if is_reduction(f) && f & RED_TOKEN == 0 {
        return false;
    }
    // Child side resolved?
    if f & CHILD_LINKED != 0 {
        let need = CHILD_DONE | ACK_R_CHILD | ACK_W_CHILD;
        if f & need != need {
            return false;
        }
    } else if f & NO_MORE_CHILD == 0 {
        return false;
    }
    // Successor side resolved?
    if f & SUCC_LINKED != 0 {
        if f & ACK_SUCC == 0 {
            return false;
        }
        // Early propagations that these guard bits promise must have
        // been acknowledged too.
        if early_read_guard(f) && f & ACK_R_SUCC == 0 {
            return false;
        }
        if early_write_guard(f) && f & ACK_W_SUCC_EARLY == 0 {
            return false;
        }
    } else if f & NO_MORE_SUCC == 0 || f & ACK_PARENT == 0 {
        return false;
    }
    true
}

/// Guard of the early read-satisfiability forwarding rule: readers pass
/// readability to reader successors before completing ("reader
/// concurrency"), and same-op reduction chains pass it to each other.
#[inline]
pub fn early_read_guard(f: u64) -> bool {
    if f & (READ_SAT | SUCC_LINKED) != (READ_SAT | SUCC_LINKED) {
        return false;
    }
    (is_read(f) && f & SUCC_READER != 0) || (is_reduction(f) && f & SUCC_SAME_RED != 0)
}

/// Guard of the early write-satisfiability forwarding rule (same-op
/// reduction chains run concurrently on private slots).
#[inline]
pub fn early_write_guard(f: u64) -> bool {
    is_reduction(f)
        && f & (WRITE_SAT | SUCC_LINKED | SUCC_SAME_RED)
            == (WRITE_SAT | SUCC_LINKED | SUCC_SAME_RED)
}

/// Guard of forwarding READ_SAT into the child chain.
#[inline]
pub fn child_read_guard(f: u64) -> bool {
    f & (CHILD_LINKED | READ_SAT) == (CHILD_LINKED | READ_SAT)
}

/// Guard of forwarding WRITE_SAT into the child chain.
#[inline]
pub fn child_write_guard(f: u64) -> bool {
    f & (CHILD_LINKED | WRITE_SAT) == (CHILD_LINKED | WRITE_SAT)
}

/// Guard of the final propagation to the successor.
#[inline]
pub fn succ_final_guard(f: u64) -> bool {
    is_fully_done(f) && f & SUCC_LINKED != 0
}

/// Guard of the upward completion report (domain closed, no successor).
#[inline]
pub fn parent_notify_guard(f: u64) -> bool {
    is_fully_done(f) && f & NO_MORE_SUCC != 0
}

/// True if predicate `guard` crossed from false to true on this delivery.
#[inline]
pub fn crossed(old: u64, new: u64, guard: impl Fn(u64) -> bool) -> bool {
    !guard(old) && guard(new)
}

/// Render flags for debugging / the Figure 1 graph dump.
pub fn format_flags(f: u64) -> String {
    let ty = match type_of(f) {
        TYPE_READ => "R",
        TYPE_WRITE => "W",
        TYPE_READWRITE => "RW",
        _ => "RED",
    };
    let mut s = String::from(ty);
    let named: &[(u64, &str)] = &[
        (READ_SAT, "rs"),
        (WRITE_SAT, "ws"),
        (COMPLETE, "done"),
        (CHILD_LINKED, "cl"),
        (CHILD_DONE, "cd"),
        (NO_MORE_CHILD, "nc"),
        (SUCC_LINKED, "sl"),
        (SUCC_READER, "sr"),
        (SUCC_SAME_RED, "ssr"),
        (SUCC_RED, "sred"),
        (NO_MORE_SUCC, "ns"),
        (HAS_NOTIFY_UP, "up"),
        (UP_SAME_RED, "upsr"),
        (RED_TOKEN, "tok"),
        (CHILD_RED, "cred"),
        (ACK_R_SUCC, "a_rs"),
        (ACK_W_SUCC_EARLY, "a_wse"),
        (ACK_R_CHILD, "a_rc"),
        (ACK_W_CHILD, "a_wc"),
        (ACK_SUCC, "a_s"),
        (ACK_PARENT, "a_p"),
        (POISON, "psn"),
    ];
    for &(bit, name) in named {
        if f & bit != 0 {
            s.push('|');
            s.push_str(name);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfied_per_type() {
        assert!(is_satisfied(TYPE_READ | READ_SAT));
        assert!(!is_satisfied(TYPE_WRITE | READ_SAT));
        assert!(is_satisfied(TYPE_WRITE | READ_SAT | WRITE_SAT));
        assert!(is_satisfied(TYPE_READWRITE | READ_SAT | WRITE_SAT));
        assert!(!is_satisfied(TYPE_READWRITE | WRITE_SAT));
        assert!(is_satisfied(TYPE_REDUCTION | READ_SAT | WRITE_SAT));
        assert!(!is_satisfied(TYPE_REDUCTION | READ_SAT));
    }

    #[test]
    fn fully_done_requires_children_resolution() {
        let base = TYPE_WRITE | READ_SAT | WRITE_SAT | COMPLETE;
        assert!(!is_fully_done(base));
        assert!(is_fully_done(base | NO_MORE_CHILD));
        assert!(is_fully_done(base | CHILD_DONE));
    }

    #[test]
    fn fully_done_reduction_needs_token() {
        let base = TYPE_REDUCTION | READ_SAT | WRITE_SAT | COMPLETE | NO_MORE_CHILD;
        assert!(!is_fully_done(base));
        assert!(is_fully_done(base | RED_TOKEN));
    }

    #[test]
    fn terminal_simple_chain_end() {
        // A write with no children and no successor, domain closed:
        let f = TYPE_WRITE
            | READ_SAT
            | WRITE_SAT
            | COMPLETE
            | NO_MORE_CHILD
            | NO_MORE_SUCC
            | ACK_PARENT;
        assert!(is_terminal(f));
        assert!(!is_terminal(f & !ACK_PARENT));
        assert!(!is_terminal(f & !NO_MORE_SUCC));
        assert!(!is_terminal(f & !COMPLETE));
    }

    #[test]
    fn terminal_with_successor_needs_ack() {
        let f = TYPE_WRITE | READ_SAT | WRITE_SAT | COMPLETE | NO_MORE_CHILD | SUCC_LINKED;
        assert!(!is_terminal(f));
        assert!(is_terminal(f | ACK_SUCC));
    }

    #[test]
    fn terminal_reader_with_reader_successor_needs_early_ack() {
        let f = TYPE_READ
            | READ_SAT
            | WRITE_SAT
            | COMPLETE
            | NO_MORE_CHILD
            | SUCC_LINKED
            | SUCC_READER
            | ACK_SUCC;
        assert!(!is_terminal(f), "early read forward still in flight");
        assert!(is_terminal(f | ACK_R_SUCC));
    }

    #[test]
    fn terminal_with_children_needs_child_acks() {
        let f = TYPE_WRITE
            | READ_SAT
            | WRITE_SAT
            | COMPLETE
            | CHILD_LINKED
            | CHILD_DONE
            | NO_MORE_SUCC
            | ACK_PARENT;
        assert!(!is_terminal(f));
        assert!(!is_terminal(f | ACK_R_CHILD));
        assert!(is_terminal(f | ACK_R_CHILD | ACK_W_CHILD));
    }

    #[test]
    fn terminal_reduction_needs_token() {
        let f = TYPE_REDUCTION
            | READ_SAT
            | WRITE_SAT
            | COMPLETE
            | NO_MORE_CHILD
            | NO_MORE_SUCC
            | ACK_PARENT;
        assert!(!is_terminal(f));
        assert!(is_terminal(f | RED_TOKEN));
    }

    #[test]
    fn early_guards() {
        assert!(early_read_guard(
            TYPE_READ | READ_SAT | SUCC_LINKED | SUCC_READER
        ));
        assert!(!early_read_guard(TYPE_READ | READ_SAT | SUCC_LINKED));
        assert!(!early_read_guard(
            TYPE_WRITE | READ_SAT | SUCC_LINKED | SUCC_READER
        ));
        assert!(early_read_guard(
            TYPE_REDUCTION | READ_SAT | SUCC_LINKED | SUCC_SAME_RED
        ));
        assert!(early_write_guard(
            TYPE_REDUCTION | WRITE_SAT | SUCC_LINKED | SUCC_SAME_RED
        ));
        assert!(!early_write_guard(
            TYPE_READ | WRITE_SAT | SUCC_LINKED | SUCC_SAME_RED
        ));
    }

    #[test]
    fn crossing_is_exact() {
        let g = |f: u64| f & (READ_SAT | WRITE_SAT) == (READ_SAT | WRITE_SAT);
        assert!(crossed(READ_SAT, READ_SAT | WRITE_SAT, g));
        assert!(!crossed(READ_SAT | WRITE_SAT, READ_SAT | WRITE_SAT, g));
        assert!(!crossed(0, READ_SAT, g));
    }

    #[test]
    fn monotonicity_of_terminal() {
        // For a sample of flag words, adding bits never turns terminal off.
        let samples = [
            TYPE_WRITE
                | READ_SAT
                | WRITE_SAT
                | COMPLETE
                | NO_MORE_CHILD
                | NO_MORE_SUCC
                | ACK_PARENT,
            TYPE_READ | READ_SAT | WRITE_SAT | COMPLETE | NO_MORE_CHILD | SUCC_LINKED | ACK_SUCC,
        ];
        let extra_bits = [CHILD_DONE, ACK_R_SUCC, ACK_W_CHILD, RED_TOKEN, SUCC_RED];
        for &f in &samples {
            if is_terminal(f) {
                for &b in &extra_bits {
                    assert!(
                        is_terminal(f | b),
                        "terminal lost by adding bit: {}",
                        format_flags(f | b)
                    );
                }
            }
        }
    }

    #[test]
    fn format_flags_mentions_type_and_bits() {
        let s = format_flags(TYPE_REDUCTION | READ_SAT | RED_TOKEN);
        assert!(s.starts_with("RED"));
        assert!(s.contains("rs"));
        assert!(s.contains("tok"));
    }
}

#[cfg(test)]
mod prop_tests {
    //! Model checking of the ASM protocol over *reachable* delivery
    //! sequences. The predicates are monotone along every execution the
    //! protocol can actually produce (link hints travel in the same
    //! message as their link bit; acknowledgements are only delivered
    //! after their rule fired), which is what the reclamation argument
    //! needs — and what these tests exhaustively randomize over.

    use super::*;
    use proptest::prelude::*;

    /// Static shape of one access's environment.
    #[derive(Debug, Clone, Copy)]
    struct Scenario {
        ty: u64,
        /// Some((reader, red, same_red)) if a successor links; None if the
        /// domain closes over us.
        succ: Option<(bool, bool, bool)>,
        has_notify_up: bool,
        up_same_red: bool,
        has_child: Option<bool /* child is reduction */>,
    }

    fn scenario() -> impl Strategy<Value = Scenario> {
        (
            0u64..4,
            proptest::option::of((any::<bool>(), any::<bool>(), any::<bool>())),
            any::<bool>(),
            any::<bool>(),
            proptest::option::of(any::<bool>()),
        )
            .prop_map(
                |(ty, succ, has_notify_up, up_same_red, has_child)| Scenario {
                    ty,
                    succ,
                    has_notify_up,
                    up_same_red,
                    has_child,
                },
            )
    }

    /// Deliver `add`, then synthesize the acknowledgement deliveries of
    /// every rule that crossed — the same thing the engine's mailbox
    /// drain does — returning the final flags.
    fn deliver_with_acks(mut f: u64, add: u64, trace: &mut Vec<(u64, u64)>) -> u64 {
        let mut pending = vec![add];
        while let Some(m) = pending.pop() {
            let old = f;
            let new = f | m;
            if old == new {
                continue;
            }
            trace.push((old, new));
            // Mirror the wait_free.rs rule engine's self-acknowledgements.
            if crossed(old, new, early_read_guard) {
                pending.push(ACK_R_SUCC);
            }
            if crossed(old, new, early_write_guard) {
                pending.push(ACK_W_SUCC_EARLY);
            }
            if crossed(old, new, child_read_guard) {
                pending.push(ACK_R_CHILD);
            }
            if crossed(old, new, child_write_guard) {
                pending.push(ACK_W_CHILD);
            }
            if crossed(old, new, succ_final_guard) {
                pending.push(ACK_SUCC);
            }
            if crossed(old, new, parent_notify_guard) {
                pending.push(ACK_PARENT);
            }
            f = new;
        }
        f
    }

    /// The external messages an access with this scenario receives, in
    /// protocol bundles.
    fn external_messages(sc: Scenario) -> Vec<u64> {
        let mut msgs = vec![READ_SAT, WRITE_SAT];
        if sc.ty == TYPE_REDUCTION {
            msgs.push(RED_TOKEN);
        }
        let mut complete = COMPLETE;
        if sc.has_child.is_none() {
            complete |= NO_MORE_CHILD;
        }
        msgs.push(complete);
        if let Some(child_red) = sc.has_child {
            let mut link = CHILD_LINKED;
            if child_red {
                link |= CHILD_RED;
            }
            msgs.push(link);
            msgs.push(CHILD_DONE);
        }
        match sc.succ {
            Some((reader, red, same_red)) => {
                let mut link = SUCC_LINKED;
                if reader {
                    link |= SUCC_READER;
                }
                if red {
                    link |= SUCC_RED;
                }
                if red && same_red {
                    link |= SUCC_SAME_RED;
                }
                msgs.push(link);
            }
            None => {
                let mut close = NO_MORE_SUCC;
                if sc.has_notify_up {
                    close |= HAS_NOTIFY_UP;
                    if sc.up_same_red {
                        close |= UP_SAME_RED;
                    }
                }
                msgs.push(close);
            }
        }
        msgs
    }

    proptest! {
        #[test]
        fn protocol_reaches_terminal_exactly_once(
            sc in scenario(),
            order in proptest::collection::vec(any::<u32>(), 8),
        ) {
            let mut msgs = external_messages(sc);
            // Random-but-valid order: CHILD_DONE must come after
            // CHILD_LINKED (a child cannot finish before it exists).
            let mut perm: Vec<usize> = (0..msgs.len()).collect();
            for i in (1..perm.len()).rev() {
                let j = (order[i % order.len()] as usize) % (i + 1);
                perm.swap(i, j);
            }
            let ordered: Vec<u64> = perm.iter().map(|&i| msgs[i]).collect();
            msgs = {
                // Move CHILD_DONE after CHILD_LINKED if needed.
                let mut v = ordered;
                if let (Some(cd), Some(cl)) = (
                    v.iter().position(|&m| m & CHILD_DONE != 0),
                    v.iter().position(|&m| m & CHILD_LINKED != 0),
                )
                    && cd < cl {
                        v.swap(cd, cl);
                    }
                v
            };

            let mut f = sc.ty;
            let mut trace = Vec::new();
            for m in msgs {
                f = deliver_with_acks(f, m, &mut trace);
            }

            // 1. The final state is terminal: reclamation always happens.
            prop_assert!(is_terminal(f), "not terminal: {}", format_flags(f));

            // 2. Terminal was crossed exactly once, at some delivery, and
            //    never turned off afterwards (monotone along execution).
            let mut crossings = 0;
            let mut was_true = false;
            for &(old, new) in &trace {
                if crossed(old, new, is_terminal) {
                    crossings += 1;
                }
                if was_true {
                    prop_assert!(is_terminal(new), "terminal lost mid-execution");
                }
                was_true = was_true || is_terminal(new);
            }
            prop_assert_eq!(crossings, 1, "terminal crossed {} times", crossings);

            // 3. Every rule fired at most once.
            let guards: &[fn(u64) -> bool] = &[
                is_satisfied,
                is_fully_done,
                early_read_guard,
                early_write_guard,
                child_read_guard,
                child_write_guard,
                succ_final_guard,
                parent_notify_guard,
            ];
            for (gi, g) in guards.iter().enumerate() {
                let n = trace.iter().filter(|&&(o, n_)| crossed(o, n_, g)).count();
                prop_assert!(n <= 1, "guard {} crossed {} times", gi, n);
            }
        }

        #[test]
        fn satisfied_and_fully_done_are_monotone_in_state_bits(f_ in any::<u32>(), extra in any::<u32>(), ty in 0u64..4) {
            // These two predicates are monotone even over arbitrary flag
            // words (terminal is only monotone along valid executions).
            let f = ((f_ as u64 & ((1 << FLAG_COUNT) - 1)) << 2) | ty;
            let e = (extra as u64 & ((1 << FLAG_COUNT) - 1)) << 2;
            prop_assert!(!is_satisfied(f) || is_satisfied(f | e));
            prop_assert!(!is_fully_done(f) || is_fully_done(f | e));
        }

        #[test]
        fn format_flags_total(f_ in any::<u32>(), ty in 0u64..4) {
            let f = ((f_ as u64 & ((1 << FLAG_COUNT) - 1)) << 2) | ty;
            let s = format_flags(f);
            prop_assert!(s.starts_with('R') || s.starts_with('W'));
        }
    }
}
