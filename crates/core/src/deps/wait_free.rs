//! The wait-free dependency system (§2 of the paper).
//!
//! Every declared access is an Atomic State Machine: one monotone `u64`
//! flags word mutated exclusively through `fetch_or` *deliveries* of
//! [`Message`]s queued in a per-thread [`MailBox`] (Figure 2). A delivery
//! returns the exact `(old, new)` flag pair, and every protocol rule fires
//! on the unique delivery that *crosses* its monotone guard — so each
//! propagation happens exactly once, with no CAS retry loops at all.
//!
//! Wait-freedom (the paper's Lemma 2.3 bounds deliveries per access by
//! |F|): our delivery is a single unconditional `fetch_or`, and each
//! non-duplicate message sets at least one fresh bit of a finite flag set,
//! so registration and unregistration complete in a bounded number of
//! steps regardless of what other threads do.
//!
//! ## Protocol summary
//!
//! * **Registration** (creator thread, single-creator invariant): each
//!   access is appended to the parent domain's bottom map. A displaced
//!   predecessor gets `SUCC_LINKED` (+ successor-type hints); a chain head
//!   links under the parent's own access via `CHILD_LINKED`, or — with no
//!   predecessor at all — is seeded `READ_SAT | WRITE_SAT` directly.
//! * **Satisfiability** flows down chains: readers forward `READ_SAT`
//!   to reader successors *before* completing (reader concurrency);
//!   same-op reduction chains forward both satisfiabilities immediately
//!   (participants run concurrently on private slots); everything else
//!   waits for the predecessor's *full completion* (body finished, child
//!   subtree finished, fully satisfied — [`flags::is_fully_done`]).
//! * **Nesting**: a parent access forwards satisfiability to its child
//!   chain; when the parent task finishes creating children the domain
//!   closes (`NO_MORE_SUCC`), and the last access of each chain reports
//!   `CHILD_DONE` upward through `notify_up`.
//! * **Reductions**: `RED_TOKEN` travels along same-op chains; the
//!   delivery that moves satisfiability *out* of a chain folds the
//!   private slots into the target first.
//! * **Reclamation**: when an access's flags satisfy
//!   [`flags::is_terminal`] (no message can ever arrive again — all
//!   propagations it originated are acknowledged via the
//!   `flagsAfterPropagation` mechanism of Listing 2), the crossing
//!   delivery drops one removal reference of the owning task.

use core::alloc::Layout;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::access::{DataAccess, MailBox, Message};
use super::flags::{self, crossed};
use super::reduction::ReductionInfo;
use super::{AccessMode, DepHooks, DependencySystem, DepsKind};
use crate::task::Task;

/// Counters for the §2 wait-freedom evidence (`delivery_bound` test) and
/// the dependency microbenchmarks.
#[derive(Debug, Default)]
pub struct WaitFreeStats {
    /// Registered accesses.
    pub accesses: AtomicU64,
    /// Non-duplicate message deliveries.
    pub deliveries: AtomicU64,
    /// Messages that were duplicates (no bit changed).
    pub duplicates: AtomicU64,
}

/// The wait-free dependency system.
pub struct WaitFreeDeps {
    stats: WaitFreeStats,
}

impl WaitFreeDeps {
    /// Create the system.
    pub fn new() -> Self {
        Self {
            stats: WaitFreeStats::default(),
        }
    }

    /// Delivery statistics snapshot: (accesses, deliveries, duplicates).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.stats.accesses.load(Ordering::Relaxed),
            self.stats.deliveries.load(Ordering::Relaxed),
            self.stats.duplicates.load(Ordering::Relaxed),
        )
    }

    /// Deliver one message: a single fetch-OR plus crossing-rule
    /// evaluation. New messages go to `mb`.
    ///
    /// # Safety
    /// `a_ptr` must point to a live access (guaranteed by the terminal
    /// protocol: a message in flight keeps its target non-terminal).
    unsafe fn deliver(
        &self,
        a_ptr: *mut DataAccess,
        add: u64,
        mb: &mut MailBox,
        hooks: &dyn DepHooks,
    ) {
        debug_assert!(!a_ptr.is_null());
        debug_assert_ne!(add, 0);
        let a = unsafe { &*a_ptr };
        let old = a.flags.fetch_or(add, Ordering::AcqRel);
        let new = old | add;
        if old == new {
            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.deliveries.fetch_add(1, Ordering::Relaxed);

        // Rule 0: poison — a predecessor's failure reached this access.
        // On blocking edges the poisoned message *is* the releasing
        // satisfiability, so the mark always lands before Rule 1 can
        // hand the task to the scheduler. An access that was already
        // satisfied before this delivery belongs to a task that may
        // legitimately be running (reader concurrency, same-op reduction
        // chains): it is *not* cancelled — the access keeps the POISON
        // bit and still forwards it down-chain (Rule 6), so blocking
        // successors are poisoned either way.
        if old & flags::POISON == 0 && new & flags::POISON != 0 && !flags::is_satisfied(old) {
            unsafe { (*a.task).mark_cancelled() };
        }

        // Rule 1: readiness — the owning task lost one blocker. One
        // completion's `deliver_all` may fire this for many successors
        // (e.g. a writer releasing a reader batch); the runtime's hooks
        // collect them during the completion window and hand them to the
        // scheduler as one batch when batched release is enabled.
        if crossed(old, new, flags::is_satisfied) {
            debug_assert_eq!(new & flags::COMPLETE, 0, "satisfied after completion");
            let t = unsafe { &*a.task };
            if t.unblock() {
                hooks.task_ready(a.task);
            }
        }

        // Rule 2: early read forwarding (reader concurrency / red chains).
        if crossed(old, new, flags::early_read_guard) {
            let succ = a.successor.load(Ordering::Acquire);
            mb.push(Message::with_ack(
                succ,
                flags::READ_SAT,
                a_ptr,
                flags::ACK_R_SUCC,
            ));
        }

        // Rule 3: early write forwarding along same-op reduction chains.
        if crossed(old, new, flags::early_write_guard) {
            let succ = a.successor.load(Ordering::Acquire);
            mb.push(Message::with_ack(
                succ,
                flags::WRITE_SAT,
                a_ptr,
                flags::ACK_W_SUCC_EARLY,
            ));
        }

        // Rules 4/5: forward satisfiability into the child chain.
        if crossed(old, new, flags::child_read_guard) {
            let child = a.child.load(Ordering::Acquire);
            mb.push(Message::with_ack(
                child,
                flags::READ_SAT,
                a_ptr,
                flags::ACK_R_CHILD,
            ));
        }
        if crossed(old, new, flags::child_write_guard) {
            let child = a.child.load(Ordering::Acquire);
            mb.push(Message::with_ack(
                child,
                flags::WRITE_SAT,
                a_ptr,
                flags::ACK_W_CHILD,
            ));
        }

        // Rule 6: final propagation to the successor.
        if crossed(old, new, flags::succ_final_guard) {
            // Leaving a reduction chain: fold private slots first.
            // Invariant (not user-reachable): `register` attaches
            // `ReductionInfo` to every access whose TYPE bits say
            // reduction before the access is published on a chain, so a
            // reduction-typed state word implies the info is present.
            if flags::is_reduction(new) && new & flags::SUCC_SAME_RED == 0 {
                let info = a.reduction.as_ref().expect("reduction access without info");
                unsafe { info.combine_into_target() };
            }
            let succ = a.successor.load(Ordering::Acquire);
            let mut f = flags::READ_SAT | flags::WRITE_SAT;
            // A reduction successor starts (or continues) a chain: give it
            // the token that says every earlier chain member finished.
            if new & (flags::SUCC_RED | flags::SUCC_SAME_RED) != 0 {
                f |= flags::RED_TOKEN;
            }
            // Failure propagation: the final message is the only one that
            // carries poison (early forwards target accesses whose tasks
            // may already run).
            if new & flags::POISON != 0 {
                f |= flags::POISON;
            }
            mb.push(Message::with_ack(succ, f, a_ptr, flags::ACK_SUCC));
        }

        // Rule 7: domain closed with no successor — report upward.
        if crossed(old, new, flags::parent_notify_guard) {
            // Same registration invariant as Rule 6 above.
            if flags::is_reduction(new) && new & flags::UP_SAME_RED == 0 {
                let info = a.reduction.as_ref().expect("reduction access without info");
                unsafe { info.combine_into_target() };
            }
            if new & flags::HAS_NOTIFY_UP != 0 {
                let up = a.notify_up.load(Ordering::Acquire);
                mb.push(Message::with_ack(
                    up,
                    flags::CHILD_DONE,
                    a_ptr,
                    flags::ACK_PARENT,
                ));
            } else {
                // Root/orphan chain end: self-acknowledge so the terminal
                // predicate is uniform.
                mb.push(Message::oneway(a_ptr, flags::ACK_PARENT));
            }
        }

        // Rule 8: terminal — no further message can ever arrive.
        if crossed(old, new, flags::is_terminal) {
            let t = a.task;
            if unsafe { &*t }.drop_removal_ref() {
                hooks.task_free(t);
            }
        }
    }

    /// Drain the mailbox to empty (the Figure 2 loop).
    ///
    /// # Safety
    /// Messages must target live accesses (protocol invariant).
    pub unsafe fn deliver_all(&self, mb: &mut MailBox, hooks: &dyn DepHooks) {
        while let Some(m) = mb.pop() {
            if !m.to.is_null() && m.flags_for_next != 0 {
                unsafe { self.deliver(m.to, m.flags_for_next, mb, hooks) };
            }
            if !m.from.is_null() && m.flags_after != 0 {
                unsafe { self.deliver(m.from, m.flags_after, mb, hooks) };
            }
        }
    }

    /// Find the parent's own access (ASM) for `addr`, if declared.
    unsafe fn parent_access(parent: *mut Task, addr: usize) -> *mut DataAccess {
        if parent.is_null() {
            return core::ptr::null_mut();
        }
        let p = unsafe { &*parent };
        if p.accesses.is_null() {
            return core::ptr::null_mut();
        }
        let decls = unsafe { p.decls() };
        for (i, d) in decls.iter().enumerate() {
            if d.addr == addr {
                return unsafe { p.accesses.add(i) };
            }
        }
        core::ptr::null_mut()
    }
}

impl Default for WaitFreeDeps {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl DependencySystem for WaitFreeDeps {
    unsafe fn register(&self, task: *mut Task, hooks: &dyn DepHooks) {
        let t = unsafe { &mut *task };
        let decls = unsafe { &mut *t.decls.get() };
        let n = decls.len();
        if n == 0 {
            return;
        }
        self.stats.accesses.fetch_add(n as u64, Ordering::Relaxed);
        let alloc = hooks.allocator();
        // Invariant (not user-reachable in practice): `Layout::array`
        // only fails when `n * size_of::<DataAccess>()` overflows
        // `isize`, i.e. an access list of ~10^17 entries — allocation
        // would fail long before. Kept as `expect` rather than a typed
        // error so the wait-free registration path stays infallible.
        let layout = Layout::array::<DataAccess>(n).expect("access array layout");
        let arr = alloc.alloc(layout) as *mut DataAccess;
        t.accesses = arr;
        t.n_accesses = n;

        let parent = t.parent;
        // The parent's child bottom map is thread-confined to us (the
        // single-creator invariant: we *are* the parent's body). This is
        // the demand-creation site: a task only pays for a map once it
        // registers a child with accesses (leaf tasks never do).
        let bottom = unsafe { (*parent).child_bottom_or_init() };
        let mut mb = MailBox::new();

        for (i, d) in decls.iter_mut().enumerate() {
            let a_ptr = unsafe { arr.add(i) };
            // Resolve reduction chain state before publication.
            let red: Option<Arc<ReductionInfo>> = match d.mode {
                AccessMode::Reduction(op) => {
                    // Share the predecessor's chain when compatible.
                    let prev_info = bottom
                        .get(&d.addr)
                        .map(|&p| unsafe { &*p })
                        .and_then(|p| p.reduction.as_ref())
                        .filter(|info| info.op == op)
                        .cloned();
                    let inherited = prev_info.or_else(|| {
                        // Chain head: share the parent's access chain if it
                        // is a same-op reduction.
                        if bottom.contains_key(&d.addr) {
                            return None;
                        }
                        let pa = unsafe { Self::parent_access(parent, d.addr) };
                        if pa.is_null() {
                            return None;
                        }
                        unsafe { &*pa }
                            .reduction
                            .as_ref()
                            .filter(|info| info.op == op)
                            .cloned()
                    });
                    Some(inherited.unwrap_or_else(|| {
                        Arc::new(ReductionInfo::new(
                            d.addr,
                            d.len.max(op.elem_size()),
                            op,
                            hooks.nworkers(),
                        ))
                    }))
                }
                _ => None,
            };
            d.reduction = red.clone();
            unsafe {
                a_ptr.write(DataAccess::new(d.addr, d.mode.type_bits(), task, red));
            }

            match bottom.insert(d.addr, a_ptr) {
                Some(prev) => {
                    // Sibling chain: we are prev's successor.
                    unsafe { (*prev).successor.store(a_ptr, Ordering::Release) };
                    let mut lf = flags::SUCC_LINKED;
                    match d.mode {
                        AccessMode::Read => lf |= flags::SUCC_READER,
                        AccessMode::Reduction(op) => {
                            lf |= flags::SUCC_RED;
                            let prev_same = unsafe { &*prev }
                                .reduction
                                .as_ref()
                                .map(|info| info.op == op)
                                .unwrap_or(false);
                            if prev_same {
                                lf |= flags::SUCC_SAME_RED;
                            }
                        }
                        _ => {}
                    }
                    hooks.edge(unsafe { (*prev).task }, task, d.addr, 0);
                    mb.push(Message::oneway(prev, lf));
                }
                None => {
                    // Chain head of this domain.
                    if d.mode.is_reduction() {
                        // A chain head has no earlier chain members.
                        mb.push(Message::oneway(a_ptr, flags::RED_TOKEN));
                    }
                    let pa = unsafe { Self::parent_access(parent, d.addr) };
                    if !pa.is_null() {
                        unsafe { (*pa).child.store(a_ptr, Ordering::Release) };
                        let mut lf = flags::CHILD_LINKED;
                        if d.mode.is_reduction() {
                            lf |= flags::CHILD_RED;
                        }
                        hooks.edge(parent, task, d.addr, 1);
                        mb.push(Message::oneway(pa, lf));
                    } else {
                        // No predecessor anywhere: immediately satisfied.
                        mb.push(Message::oneway(a_ptr, flags::READ_SAT | flags::WRITE_SAT));
                    }
                }
            }
        }
        unsafe { self.deliver_all(&mut mb, hooks) };
    }

    unsafe fn body_done(&self, task: *mut Task, hooks: &dyn DepHooks) {
        let t = unsafe { &*task };
        let mut mb = MailBox::new();
        // Close this task's child dependency domain: the children set is
        // final (only the body creates children, and it just returned).
        // Leaf tasks never created a map — `bottom` is `None` and every
        // own access closes with NO_MORE_CHILD below.
        let bottom = unsafe { t.child_bottom_ref() };
        for (&addr, &last) in bottom.into_iter().flatten() {
            let mut lf = flags::NO_MORE_SUCC;
            let own = unsafe { Self::parent_access(task, addr) };
            if !own.is_null() {
                unsafe { (*last).notify_up.store(own, Ordering::Release) };
                lf |= flags::HAS_NOTIFY_UP;
                let last_ref = unsafe { &*last };
                let own_ref = unsafe { &*own };
                let same_red = match (&last_ref.reduction, &own_ref.reduction) {
                    (Some(a), Some(b)) => a.op == b.op,
                    _ => false,
                };
                if same_red {
                    lf |= flags::UP_SAME_RED;
                }
            }
            mb.push(Message::oneway(last, lf));
        }
        // Complete own accesses. NO_MORE_CHILD when no child access ever
        // linked below (i.e. the address never appeared in our domain).
        if !t.accesses.is_null() {
            let decls = unsafe { t.decls() };
            // A failed (or poisoned) task taints every access it owns, so
            // Rule 6 forwards the poison to all blocking successors.
            let poison = if t.is_cancelled() { flags::POISON } else { 0 };
            for (i, d) in decls.iter().enumerate() {
                let a_ptr = unsafe { t.accesses.add(i) };
                let mut cf = flags::COMPLETE | poison;
                if !bottom.is_some_and(|b| b.contains_key(&d.addr)) {
                    cf |= flags::NO_MORE_CHILD;
                }
                mb.push(Message::oneway(a_ptr, cf));
            }
        }
        // Drop the stale child-access pointers now rather than at
        // reclamation (the map itself is retained for recycling).
        if let Some(map) = unsafe { &mut *t.child_bottom.get() }.as_deref_mut() {
            map.clear();
        }
        unsafe { self.deliver_all(&mut mb, hooks) };
    }

    unsafe fn fully_done(&self, _task: *mut Task, _hooks: &dyn DepHooks) {
        // Subtree completion propagates through the ASMs themselves
        // (CHILD_DONE messages); nothing to do here.
    }

    fn kind(&self) -> DepsKind {
        DepsKind::WaitFree
    }

    unsafe fn reset_faults_under(&self, parent: *mut Task) {
        // POISON persists on the chain-bottom accesses of `parent`'s
        // still-open domain (they outlive their completed tasks until
        // the parent's own body_done, and every future registrant links
        // after them — Rule 6 would forward the poison). At a quiescent
        // barrier no deliveries are in flight, so clearing the flag is
        // the one safe non-monotone transition: the failure's lineage
        // ends here and the next phase registers on clean chains.
        let bottom = unsafe { (*parent).child_bottom_ref() };
        for (_, &last) in bottom.into_iter().flatten() {
            unsafe { &*last }
                .flags
                .fetch_and(!flags::POISON, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::Deps;
    use crate::deps::RedOp;
    use nanotask_alloc::{RuntimeAllocator, SystemAllocator};
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;

    /// Minimal single-threaded harness standing in for the runtime: it
    /// drives tasks through create → ready → execute → complete and
    /// records the order in which tasks became ready.
    struct Harness {
        deps: WaitFreeDeps,
        hooks: TestHooks,
        tasks: Mutex<Vec<*mut Task>>,
        next_id: AtomicUsize,
        root: *mut Task,
    }

    struct TestHooks {
        alloc: SystemAllocator,
        ready: Mutex<Vec<u64>>,
        freed: Mutex<Vec<u64>>,
        edges: Mutex<Vec<(u64, u64, u8)>>,
    }

    unsafe impl DepHooks for TestHooks {
        fn task_ready(&self, task: *mut Task) {
            self.ready.lock().push(unsafe { (*task).id });
        }
        fn task_free(&self, task: *mut Task) {
            self.freed.lock().push(unsafe { (*task).id });
            // The harness owns task memory (Boxes); freeing is done at
            // teardown so tests can inspect state.
        }
        fn edge(&self, from: *mut Task, to: *mut Task, _addr: usize, kind: u8) {
            self.edges
                .lock()
                .push(unsafe { ((*from).id, (*to).id, kind) });
        }
        fn nworkers(&self) -> usize {
            4
        }
        fn allocator(&self) -> &dyn RuntimeAllocator {
            &self.alloc
        }
    }

    impl Harness {
        fn new() -> Self {
            let root = Box::into_raw(Box::new(Task::new(
                0,
                "root",
                core::ptr::null_mut(),
                0,
                Box::new(|_| {}),
                vec![],
            )));
            Self {
                deps: WaitFreeDeps::new(),
                hooks: TestHooks {
                    alloc: SystemAllocator::default(),
                    ready: Mutex::new(Vec::new()),
                    freed: Mutex::new(Vec::new()),
                    edges: Mutex::new(Vec::new()),
                },
                tasks: Mutex::new(Vec::new()),
                next_id: AtomicUsize::new(1),
                root,
            }
        }

        /// Create + register a task under `parent` (None = root).
        fn spawn(&self, parent: Option<*mut Task>, deps: Deps) -> *mut Task {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed) as u64;
            let parent = parent.unwrap_or(self.root);
            let t = Box::into_raw(Box::new(Task::new(
                id,
                "t",
                parent,
                0,
                Box::new(|_| {}),
                deps.into_decls(),
            )));
            self.tasks.lock().push(t);
            unsafe {
                self.deps.register(t, &self.hooks);
                if (*t).unblock() {
                    self.hooks.task_ready(t);
                }
            }
            t
        }

        /// Simulate executing a task body (children must have been
        /// spawned already through `spawn(Some(t), ..)` by the test),
        /// including the runtime's subtree-reference drop.
        fn complete(&self, t: *mut Task) {
            unsafe {
                self.deps.body_done(t, &self.hooks);
                if (*t).drop_child_ref() && (*t).drop_removal_ref() {
                    self.hooks.task_free(t);
                }
            }
        }

        fn ready_ids(&self) -> Vec<u64> {
            self.hooks.ready.lock().clone()
        }

        fn is_ready(&self, t: *mut Task) -> bool {
            self.ready_ids().contains(&unsafe { (*t).id })
        }
    }

    impl Drop for Harness {
        fn drop(&mut self) {
            // Close the root domain so chains terminate, then release.
            unsafe {
                self.deps.body_done(self.root, &self.hooks);
            }
            let alloc = SystemAllocator::default();
            for &t in self.tasks.lock().iter() {
                unsafe {
                    let task = &mut *t;
                    if !task.accesses.is_null() {
                        for i in 0..task.n_accesses {
                            core::ptr::drop_in_place(task.accesses.add(i));
                        }
                        alloc.dealloc(
                            task.accesses as *mut u8,
                            Layout::array::<DataAccess>(task.n_accesses).unwrap(),
                        );
                    }
                    drop(Box::from_raw(t));
                }
            }
            unsafe { drop(Box::from_raw(self.root)) };
        }
    }

    #[test]
    fn independent_tasks_ready_immediately() {
        let h = Harness::new();
        let x = 1u64;
        let y = 2u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&y));
        assert!(h.is_ready(a));
        assert!(h.is_ready(b));
    }

    #[test]
    fn write_after_write_serializes() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&x));
        assert!(h.is_ready(a));
        assert!(!h.is_ready(b));
        h.complete(a);
        assert!(h.is_ready(b));
    }

    #[test]
    fn readers_run_concurrently_after_writer() {
        let h = Harness::new();
        let x = 1u64;
        let w = h.spawn(None, Deps::new().write(&x));
        let r1 = h.spawn(None, Deps::new().read(&x));
        let r2 = h.spawn(None, Deps::new().read(&x));
        let w2 = h.spawn(None, Deps::new().write(&x));
        assert!(h.is_ready(w));
        assert!(!h.is_ready(r1));
        assert!(!h.is_ready(r2));
        h.complete(w);
        assert!(h.is_ready(r1), "reader 1 satisfied after writer");
        assert!(h.is_ready(r2), "reader concurrency: both readers ready");
        assert!(!h.is_ready(w2), "second writer waits for readers");
        h.complete(r1);
        assert!(!h.is_ready(w2));
        h.complete(r2);
        assert!(h.is_ready(w2), "writer ready after all readers released");
    }

    #[test]
    fn readwrite_behaves_like_write() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().readwrite(&x));
        let b = h.spawn(None, Deps::new().readwrite(&x));
        assert!(h.is_ready(a));
        assert!(!h.is_ready(b));
        h.complete(a);
        assert!(h.is_ready(b));
    }

    #[test]
    fn chain_of_many_writers_releases_in_order() {
        let h = Harness::new();
        let x = 1u64;
        let ts: Vec<_> = (0..10)
            .map(|_| h.spawn(None, Deps::new().write(&x)))
            .collect();
        for (i, &t) in ts.iter().enumerate() {
            assert!(h.is_ready(t), "writer {i} should be ready");
            if i + 1 < ts.len() {
                assert!(!h.is_ready(ts[i + 1]), "writer {} ready too early", i + 1);
            }
            h.complete(t);
        }
    }

    #[test]
    fn multiple_addresses_all_must_satisfy() {
        let h = Harness::new();
        let x = 1u64;
        let y = 2u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&y));
        let c = h.spawn(None, Deps::new().read(&x).read(&y));
        assert!(!h.is_ready(c));
        h.complete(a);
        assert!(!h.is_ready(c), "one of two deps still pending");
        h.complete(b);
        assert!(h.is_ready(c));
    }

    #[test]
    fn child_inherits_parent_satisfiability() {
        let h = Harness::new();
        let x = 1u64;
        let p = h.spawn(None, Deps::new().readwrite(&x));
        assert!(h.is_ready(p));
        // While p "executes", it spawns a child accessing the same data.
        let c = h.spawn(Some(p), Deps::new().readwrite(&x));
        assert!(
            h.is_ready(c),
            "child gets satisfiability from parent access"
        );
        h.complete(c);
        h.complete(p);
    }

    #[test]
    fn successor_waits_for_child_subtree() {
        let h = Harness::new();
        let x = 1u64;
        let p = h.spawn(None, Deps::new().readwrite(&x));
        let s = h.spawn(None, Deps::new().readwrite(&x));
        let c = h.spawn(Some(p), Deps::new().readwrite(&x));
        // Parent body finishes, but its child still runs.
        h.complete(p);
        assert!(!h.is_ready(s), "successor must wait for the child subtree");
        h.complete(c);
        assert!(h.is_ready(s), "child completion releases the successor");
    }

    #[test]
    fn grandchildren_block_successor_too() {
        let h = Harness::new();
        let x = 1u64;
        let p = h.spawn(None, Deps::new().readwrite(&x));
        let s = h.spawn(None, Deps::new().readwrite(&x));
        let c = h.spawn(Some(p), Deps::new().readwrite(&x));
        let g = h.spawn(Some(c), Deps::new().readwrite(&x));
        h.complete(p);
        h.complete(c);
        assert!(!h.is_ready(s), "grandchild still holds the address");
        h.complete(g);
        assert!(h.is_ready(s));
    }

    #[test]
    fn sibling_children_serialize_within_domain() {
        let h = Harness::new();
        let x = 1u64;
        let p = h.spawn(None, Deps::new().readwrite(&x));
        let c1 = h.spawn(Some(p), Deps::new().readwrite(&x));
        let c2 = h.spawn(Some(p), Deps::new().readwrite(&x));
        assert!(h.is_ready(c1));
        assert!(!h.is_ready(c2), "children to same address serialize");
        h.complete(c1);
        assert!(h.is_ready(c2));
        h.complete(c2);
        h.complete(p);
    }

    #[test]
    fn child_without_parent_access_is_independent() {
        let h = Harness::new();
        let x = 1u64;
        let y = 2u64;
        let p = h.spawn(None, Deps::new().readwrite(&x));
        // Child uses an address the parent does not access.
        let c = h.spawn(Some(p), Deps::new().write(&y));
        assert!(h.is_ready(c), "orphan chain head is immediately satisfied");
    }

    #[test]
    fn reduction_chain_runs_concurrently_and_combines() {
        let h = Harness::new();
        let mut acc = 100.0f64;
        let addr_holder = &mut acc;
        let r1 = h.spawn(None, Deps::new().reduce(addr_holder, RedOp::SumF64));
        let r2 = h.spawn(None, Deps::new().reduce(addr_holder, RedOp::SumF64));
        let r3 = h.spawn(None, Deps::new().reduce(addr_holder, RedOp::SumF64));
        let reader = h.spawn(None, Deps::new().read(addr_holder));
        assert!(h.is_ready(r1) && h.is_ready(r2) && h.is_ready(r3));
        assert!(!h.is_ready(reader));
        // Simulate each participant adding into its private slot.
        for (w, &t) in [r1, r2, r3].iter().enumerate() {
            unsafe {
                let decls = (*t).decls();
                let info = decls[0].reduction.as_ref().unwrap();
                *(info.slot(w) as *mut f64) += (w + 1) as f64;
            }
        }
        h.complete(r1);
        h.complete(r3);
        assert!(!h.is_ready(reader), "chain not finished yet");
        h.complete(r2);
        assert!(h.is_ready(reader), "reader released after whole chain");
        assert_eq!(acc, 106.0, "slots combined into target exactly once");
    }

    #[test]
    fn reduction_after_writer_waits() {
        let h = Harness::new();
        let acc = 0.0f64;
        let w = h.spawn(None, Deps::new().write(&acc));
        let r = h.spawn(None, Deps::new().reduce(&acc, RedOp::SumF64));
        assert!(!h.is_ready(r));
        h.complete(w);
        assert!(h.is_ready(r));
        h.complete(r);
    }

    #[test]
    fn different_op_reductions_serialize() {
        let h = Harness::new();
        let acc = 0.0f64;
        let a = h.spawn(None, Deps::new().reduce(&acc, RedOp::SumF64));
        let b = h.spawn(None, Deps::new().reduce(&acc, RedOp::MaxF64));
        assert!(h.is_ready(a));
        assert!(!h.is_ready(b), "different op breaks the chain");
        h.complete(a);
        assert!(h.is_ready(b));
        h.complete(b);
    }

    #[test]
    fn edges_reported_for_graph_dump() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let _b = h.spawn(None, Deps::new().read(&x));
        let _c = h.spawn(Some(a), Deps::new().read(&x));
        let edges = h.hooks.edges.lock().clone();
        assert!(edges.iter().any(|&(_, _, k)| k == 0), "successor edge seen");
        assert!(edges.iter().any(|&(_, _, k)| k == 1), "child edge seen");
    }

    #[test]
    fn delivery_bound_holds() {
        // Lemma 2.3: deliveries per access bounded by the flag count.
        let h = Harness::new();
        let x = 1u64;
        let ts: Vec<_> = (0..50)
            .map(|i| {
                let mode = if i % 3 == 0 {
                    Deps::new().write(&x)
                } else {
                    Deps::new().read(&x)
                };
                h.spawn(None, mode)
            })
            .collect();
        for &t in &ts {
            h.complete(t);
        }
        let (accesses, deliveries, _dups) = h.deps.stats();
        assert_eq!(accesses, 50);
        assert!(
            deliveries <= accesses * flags::FLAG_COUNT as u64,
            "avg deliveries per access exceeds |F|: {deliveries} for {accesses}"
        );
    }

    #[test]
    fn poison_propagates_along_blocking_chain() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&x));
        let c = h.spawn(None, Deps::new().write(&x));
        unsafe { (*a).mark_cancelled() };
        h.complete(a);
        assert!(h.is_ready(b), "poisoned successor is still released");
        assert!(unsafe { (*b).is_cancelled() }, "direct successor poisoned");
        h.complete(b);
        assert!(h.is_ready(c));
        assert!(
            unsafe { (*c).is_cancelled() },
            "poison is transitive through cancelled tasks"
        );
        h.complete(c);
    }

    #[test]
    fn poison_reaches_readers_behind_failed_writer() {
        let h = Harness::new();
        let x = 1u64;
        let w = h.spawn(None, Deps::new().write(&x));
        let r = h.spawn(None, Deps::new().read(&x));
        unsafe { (*w).mark_cancelled() };
        h.complete(w);
        assert!(h.is_ready(r));
        assert!(
            unsafe { (*r).is_cancelled() },
            "reader blocked on failed writer is poisoned"
        );
        h.complete(r);
    }

    #[test]
    fn concurrent_reader_peers_are_not_cancelled() {
        let h = Harness::new();
        let x = 1u64;
        let w = h.spawn(None, Deps::new().write(&x));
        let r1 = h.spawn(None, Deps::new().read(&x));
        let r2 = h.spawn(None, Deps::new().read(&x));
        let w2 = h.spawn(None, Deps::new().write(&x));
        h.complete(w);
        assert!(h.is_ready(r1) && h.is_ready(r2));
        // r1 fails while r2 (already released) runs concurrently.
        unsafe { (*r1).mark_cancelled() };
        h.complete(r1);
        assert!(
            !unsafe { (*r2).is_cancelled() },
            "a failed reader must not cancel an already-released peer"
        );
        h.complete(r2);
        assert!(h.is_ready(w2));
        assert!(
            unsafe { (*w2).is_cancelled() },
            "the blocking successor of a failed reader is poisoned"
        );
        h.complete(w2);
    }

    #[test]
    fn poison_crosses_addresses_through_multi_access_tasks() {
        let h = Harness::new();
        let x = 1u64;
        let y = 2u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&x).write(&y));
        let c = h.spawn(None, Deps::new().write(&y));
        unsafe { (*a).mark_cancelled() };
        h.complete(a);
        assert!(unsafe { (*b).is_cancelled() }, "poisoned via x");
        h.complete(b);
        assert!(
            unsafe { (*c).is_cancelled() },
            "b's cancellation taints its y access too"
        );
        h.complete(c);
    }

    #[test]
    fn tasks_eventually_freed() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&x));
        h.complete(a);
        h.complete(b);
        // b's access chain is still open (domain not closed); a's access
        // became terminal when it propagated to b.
        let freed = h.hooks.freed.lock().clone();
        assert!(
            freed.contains(&unsafe { (*a).id }),
            "a reclaimed: {freed:?}"
        );
        drop(h); // root domain close reclaims b (checked by LSan/Miri-style drop)
    }
}
