//! Fine-grained-locking dependency system — the *previous* Nanos6
//! implementation the paper's wait-free design replaced ("The previous
//! implementation of dependencies inside Nanos6 was based on fine-grained
//! locking, but it was very complex to avoid possible deadlocks", §2.2).
//!
//! This is the baseline behind the "w/o wait-free dependencies" curves of
//! Figures 4–6. Semantics match the wait-free system for the supported
//! patterns: per-address FIFO ordering with reader batching and same-op
//! reduction batching, dependency domains scoped per parent task (so
//! nesting works), and child subtrees holding their parent's addresses
//! until the subtree finishes (release happens at *fully done*, which is
//! a conservative — strictly stronger — version of the wait-free
//! system's per-address child tracking).
//!
//! Structure: a hash of `(parent, address)` → a queue protected by one of
//! 64 shard mutexes. Every registration and every release serializes on a
//! shard — the contention the wait-free redesign eliminates.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use super::reduction::ReductionInfo;
use super::{AccessMode, DepHooks, DependencySystem, DepsKind};
use crate::task::Task;

const SHARDS: usize = 64;

/// What the currently-active batch of a queue is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ActiveKind {
    None,
    Readers,
    Writer,
    Reduction(super::reduction::RedOp),
}

struct Waiter {
    task: *mut Task,
    decl_idx: usize,
    mode: AccessMode,
}

unsafe impl Send for Waiter {}

struct AddrQueue {
    /// Entries not yet satisfied, FIFO.
    waiting: VecDeque<Waiter>,
    /// Tasks currently holding the address.
    active: Vec<*mut Task>,
    kind: ActiveKind,
    /// Reduction chain state of the active batch.
    red: Option<Arc<ReductionInfo>>,
    /// Sticky failure-propagation flag: a cancelled/failed task released
    /// this address, so every task ordered after it (FIFO) is a
    /// transitive successor and must be cancelled on activation. Mirrors
    /// the wait-free system's POISON bit, which persists on the chain's
    /// last access; a poisoned queue is therefore never removed from the
    /// shard while its domain may still gain registrants.
    poisoned: bool,
}

impl AddrQueue {
    fn new() -> Self {
        Self {
            waiting: VecDeque::new(),
            active: Vec::new(),
            kind: ActiveKind::None,
            red: None,
            poisoned: false,
        }
    }

    fn compatible(&self, mode: AccessMode) -> bool {
        match (self.kind, mode) {
            (ActiveKind::None, _) => true,
            (ActiveKind::Readers, AccessMode::Read) => true,
            (ActiveKind::Reduction(a), AccessMode::Reduction(b)) => a == b,
            _ => false,
        }
    }
}

type Shard = HashMap<(usize, usize), AddrQueue>;

/// The fine-grained-locking dependency system.
pub struct LockingDeps {
    shards: Box<[Mutex<Shard>]>,
}

// Raw task pointers inside the shards are only dereferenced while the
// protocol guarantees liveness (registered / active / waiting tasks).
unsafe impl Send for LockingDeps {}
unsafe impl Sync for LockingDeps {}

impl LockingDeps {
    /// Create the system.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: (usize, usize)) -> &Mutex<Shard> {
        // Mix both key halves; shards are a power of two.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        &self.shards[(h >> 7) & (SHARDS - 1)]
    }

    /// Activate `w` inside `q` (shard lock held). Returns the task if it
    /// lost its last blocker and is now ready.
    unsafe fn activate(
        q: &mut AddrQueue,
        w: Waiter,
        addr: usize,
        nworkers: usize,
    ) -> Option<*mut Task> {
        match w.mode {
            AccessMode::Read => q.kind = ActiveKind::Readers,
            AccessMode::Write | AccessMode::ReadWrite => q.kind = ActiveKind::Writer,
            AccessMode::Reduction(op) => {
                q.kind = ActiveKind::Reduction(op);
                let t = unsafe { &*w.task };
                let decls = unsafe { &mut *t.decls.get() };
                let d = &mut decls[w.decl_idx];
                let info = q
                    .red
                    .get_or_insert_with(|| {
                        Arc::new(ReductionInfo::new(
                            addr,
                            d.len.max(op.elem_size()),
                            op,
                            nworkers,
                        ))
                    })
                    .clone();
                d.reduction = Some(info);
            }
        }
        q.active.push(w.task);
        let t = unsafe { &*w.task };
        if t.unblock() { Some(w.task) } else { None }
    }
}

impl Default for LockingDeps {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl DependencySystem for LockingDeps {
    unsafe fn register(&self, task: *mut Task, hooks: &dyn DepHooks) {
        let t = unsafe { &*task };
        let n = unsafe { t.decls() }.len();
        let parent = t.parent as usize;
        let mut newly_ready: Option<*mut Task> = None;
        for i in 0..n {
            let (addr, mode) = {
                let d = &unsafe { t.decls() }[i];
                (d.addr, d.mode)
            };
            let key = (parent, addr);
            let mut shard = self.shard(key).lock();
            let q = shard.entry(key).or_insert_with(AddrQueue::new);
            let w = Waiter {
                task,
                decl_idx: i,
                mode,
            };
            if q.waiting.is_empty() && q.compatible(mode) {
                if let Some(prev) = q.active.last().copied() {
                    hooks.edge(prev, task, addr, 0);
                }
                if q.poisoned {
                    // Ordered after a failed task on this address: cancel
                    // before the readiness transition can publish it.
                    unsafe { (*task).mark_cancelled() };
                }
                if let Some(ready) = unsafe { Self::activate(q, w, addr, hooks.nworkers()) } {
                    newly_ready = Some(ready);
                }
            } else {
                if let Some(prev) = q
                    .waiting
                    .back()
                    .map(|e| e.task)
                    .or_else(|| q.active.last().copied())
                {
                    hooks.edge(prev, task, addr, 0);
                }
                q.waiting.push_back(w);
            }
        }
        if let Some(ready) = newly_ready {
            // All accesses registered; satisfied count already folded into
            // the blocker counter. (The creation guard is still held by
            // the caller, so `ready` can only be the task itself after its
            // final access — defensive anyway.)
            hooks.task_ready(ready);
        }
    }

    unsafe fn body_done(&self, _task: *mut Task, _hooks: &dyn DepHooks) {
        // Conservative nesting rule: addresses are held until the whole
        // subtree finishes; the release happens in `fully_done`.
    }

    unsafe fn fully_done(&self, task: *mut Task, hooks: &dyn DepHooks) {
        let t = unsafe { &*task };
        let n = unsafe { t.decls() }.len();
        let parent = t.parent as usize;
        let mut to_ready: Vec<*mut Task> = Vec::new();
        for i in 0..n {
            let addr = unsafe { t.decls() }[i].addr;
            let key = (parent, addr);
            let mut shard = self.shard(key).lock();
            let Some(q) = shard.get_mut(&key) else {
                debug_assert!(false, "release of unregistered access");
                continue;
            };
            // Invariant: `register` put this task into `active` before it
            // could run, and `fully_done` runs exactly once per task — so
            // the entry must still be there. Not user-reachable; a miss
            // here means the release protocol itself is broken.
            let pos = q
                .active
                .iter()
                .position(|&p| p == task)
                .expect("release protocol invariant: task not in active set");
            q.active.swap_remove(pos);
            // Failure propagation: a cancelled task releasing an address
            // taints everything ordered after it on that address.
            if t.is_cancelled() {
                q.poisoned = true;
            }
            if q.active.is_empty() {
                // Batch finished: combine a reduction batch exactly once.
                if let ActiveKind::Reduction(_) = q.kind
                    && let Some(info) = q.red.take()
                {
                    unsafe { info.combine_into_target() };
                }
                q.kind = ActiveKind::None;
                // Wake the next batch: the front entry plus every
                // immediately-following compatible entry.
                while let Some(front) = q.waiting.front() {
                    if q.active.is_empty() || q.compatible(front.mode) {
                        // Invariant: `front()` above observed an entry and
                        // the shard lock is held — the pop cannot miss.
                        let w = q
                            .waiting
                            .pop_front()
                            .expect("queue invariant: observed front vanished");
                        if q.poisoned {
                            unsafe { (*w.task).mark_cancelled() };
                        }
                        if let Some(ready) = unsafe { Self::activate(q, w, addr, hooks.nworkers()) }
                        {
                            to_ready.push(ready);
                        }
                    } else {
                        break;
                    }
                }
                // A poisoned queue is kept so late registrants in the
                // same domain still observe the failure (the wait-free
                // POISON bit persists on the chain the same way).
                if q.active.is_empty() && q.waiting.is_empty() && !q.poisoned {
                    shard.remove(&key);
                }
            }
            drop(shard);
            // One removal reference per access, as in the wait-free system.
            if t.drop_removal_ref() {
                hooks.task_free(task);
            }
        }
        // Hand every successor this completion released to the runtime as
        // one batch: a single scheduler operation (and one chance for the
        // worker to keep an immediate successor) instead of per-task
        // `add_ready` round-trips.
        hooks.task_ready_batch(&to_ready);
    }

    fn kind(&self) -> DepsKind {
        DepsKind::Locking
    }

    fn reset_faults(&self) {
        // Poisoned queues persist within a run so late registrants on a
        // failed address still observe the failure (the locking mirror
        // of the wait-free chain's persistent POISON flag). At a run
        // boundary that lineage ends: clear the flags and drop queues
        // that were only kept alive by them.
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.retain(|_, q| {
                q.poisoned = false;
                !q.active.is_empty() || !q.waiting.is_empty()
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::Deps;
    use crate::deps::reduction::RedOp;
    use nanotask_alloc::{RuntimeAllocator, SystemAllocator};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct TestHooks {
        alloc: SystemAllocator,
        ready: Mutex<Vec<u64>>,
        freed: Mutex<Vec<u64>>,
    }

    unsafe impl DepHooks for TestHooks {
        fn task_ready(&self, task: *mut Task) {
            self.ready.lock().push(unsafe { (*task).id });
        }
        fn task_free(&self, task: *mut Task) {
            self.freed.lock().push(unsafe { (*task).id });
        }
        fn nworkers(&self) -> usize {
            4
        }
        fn allocator(&self) -> &dyn RuntimeAllocator {
            &self.alloc
        }
    }

    struct Harness {
        deps: LockingDeps,
        hooks: TestHooks,
        tasks: Mutex<Vec<*mut Task>>,
        next_id: AtomicUsize,
        root: *mut Task,
    }

    impl Harness {
        fn new() -> Self {
            Self {
                deps: LockingDeps::new(),
                hooks: TestHooks {
                    alloc: SystemAllocator::default(),
                    ready: Mutex::new(Vec::new()),
                    freed: Mutex::new(Vec::new()),
                },
                tasks: Mutex::new(Vec::new()),
                next_id: AtomicUsize::new(1),
                root: Box::into_raw(Box::new(Task::new(
                    0,
                    "root",
                    core::ptr::null_mut(),
                    0,
                    Box::new(|_| {}),
                    vec![],
                ))),
            }
        }

        fn spawn(&self, parent: Option<*mut Task>, deps: Deps) -> *mut Task {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed) as u64;
            let t = Box::into_raw(Box::new(Task::new(
                id,
                "t",
                parent.unwrap_or(self.root),
                0,
                Box::new(|_| {}),
                deps.into_decls(),
            )));
            self.tasks.lock().push(t);
            unsafe {
                self.deps.register(t, &self.hooks);
                if (*t).unblock() {
                    self.hooks.task_ready(t);
                }
            }
            t
        }

        fn complete(&self, t: *mut Task) {
            unsafe {
                self.deps.body_done(t, &self.hooks);
                if (*t).drop_child_ref() {
                    self.deps.fully_done(t, &self.hooks);
                    if (*t).drop_removal_ref() {
                        self.hooks.task_free(t);
                    }
                }
            }
        }

        fn is_ready(&self, t: *mut Task) -> bool {
            self.hooks.ready.lock().contains(&unsafe { (*t).id })
        }
    }

    impl Drop for Harness {
        fn drop(&mut self) {
            for &t in self.tasks.lock().iter() {
                unsafe { drop(Box::from_raw(t)) };
            }
            unsafe { drop(Box::from_raw(self.root)) };
        }
    }

    #[test]
    fn write_after_write_serializes() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&x));
        assert!(h.is_ready(a));
        assert!(!h.is_ready(b));
        h.complete(a);
        assert!(h.is_ready(b));
        h.complete(b);
    }

    #[test]
    fn reader_batch_after_writer() {
        let h = Harness::new();
        let x = 1u64;
        let w = h.spawn(None, Deps::new().write(&x));
        let r1 = h.spawn(None, Deps::new().read(&x));
        let r2 = h.spawn(None, Deps::new().read(&x));
        let w2 = h.spawn(None, Deps::new().write(&x));
        assert!(!h.is_ready(r1) && !h.is_ready(r2));
        h.complete(w);
        assert!(h.is_ready(r1) && h.is_ready(r2));
        assert!(!h.is_ready(w2));
        h.complete(r1);
        assert!(!h.is_ready(w2));
        h.complete(r2);
        assert!(h.is_ready(w2));
        h.complete(w2);
    }

    #[test]
    fn concurrent_readers_at_head() {
        let h = Harness::new();
        let x = 1u64;
        let r1 = h.spawn(None, Deps::new().read(&x));
        let r2 = h.spawn(None, Deps::new().read(&x));
        assert!(h.is_ready(r1) && h.is_ready(r2));
    }

    #[test]
    fn multi_address_requires_all() {
        let h = Harness::new();
        let x = 1u64;
        let y = 2u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&y));
        let c = h.spawn(None, Deps::new().read(&x).read(&y));
        assert!(!h.is_ready(c));
        h.complete(a);
        assert!(!h.is_ready(c));
        h.complete(b);
        assert!(h.is_ready(c));
    }

    #[test]
    fn nested_domains_are_independent() {
        let h = Harness::new();
        let x = 1u64;
        let p = h.spawn(None, Deps::new().readwrite(&x));
        assert!(h.is_ready(p));
        let c = h.spawn(Some(p), Deps::new().readwrite(&x));
        assert!(h.is_ready(c), "child domain starts fresh");
        h.complete(c);
        h.complete(p);
    }

    #[test]
    fn successor_waits_for_subtree_via_fully_done() {
        let h = Harness::new();
        let x = 1u64;
        let p = h.spawn(None, Deps::new().readwrite(&x));
        let s = h.spawn(None, Deps::new().readwrite(&x));
        let c = h.spawn(Some(p), Deps::new().readwrite(&x));
        // p's body ends but its child is alive: p is NOT fully done.
        unsafe {
            (*p).add_child(); // simulate runtime child accounting
            h.deps.body_done(p, &h.hooks);
            assert!(!(*p).drop_child_ref()); // body guard; child still live
        }
        assert!(!h.is_ready(s));
        h.complete(c);
        // Now the child finished: complete p's subtree.
        unsafe {
            if (*p).drop_child_ref() {
                h.deps.fully_done(p, &h.hooks);
            }
        }
        assert!(h.is_ready(s));
    }

    #[test]
    fn reduction_batch_combines_once() {
        let h = Harness::new();
        let acc = 50.0f64;
        let r1 = h.spawn(None, Deps::new().reduce(&acc, RedOp::SumF64));
        let r2 = h.spawn(None, Deps::new().reduce(&acc, RedOp::SumF64));
        let reader = h.spawn(None, Deps::new().read(&acc));
        assert!(h.is_ready(r1) && h.is_ready(r2));
        assert!(!h.is_ready(reader));
        for (w, &t) in [r1, r2].iter().enumerate() {
            unsafe {
                let info = (*t).decls()[0].reduction.as_ref().unwrap();
                *(info.slot(w) as *mut f64) += 10.0;
            }
        }
        h.complete(r1);
        assert!(!h.is_ready(reader));
        h.complete(r2);
        assert!(h.is_ready(reader));
        assert_eq!(acc, 70.0);
    }

    #[test]
    fn different_op_reductions_serialize() {
        let h = Harness::new();
        let acc = 0.0f64;
        let a = h.spawn(None, Deps::new().reduce(&acc, RedOp::SumF64));
        let b = h.spawn(None, Deps::new().reduce(&acc, RedOp::MaxF64));
        assert!(h.is_ready(a));
        assert!(!h.is_ready(b));
        h.complete(a);
        assert!(h.is_ready(b));
        h.complete(b);
    }

    #[test]
    fn fifo_order_preserved() {
        let h = Harness::new();
        let x = 1u64;
        let ts: Vec<_> = (0..8)
            .map(|_| h.spawn(None, Deps::new().write(&x)))
            .collect();
        for (i, &t) in ts.iter().enumerate() {
            assert!(h.is_ready(t), "writer {i} ready");
            if i + 1 < ts.len() {
                assert!(!h.is_ready(ts[i + 1]));
            }
            h.complete(t);
        }
    }

    #[test]
    fn poison_propagates_along_queue() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&x));
        let c = h.spawn(None, Deps::new().write(&x));
        unsafe { (*a).mark_cancelled() };
        h.complete(a);
        assert!(h.is_ready(b), "poisoned successor is still released");
        assert!(unsafe { (*b).is_cancelled() });
        h.complete(b);
        assert!(
            unsafe { (*c).is_cancelled() },
            "poison is transitive through cancelled tasks"
        );
        h.complete(c);
    }

    #[test]
    fn poison_outlives_a_drained_queue() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        unsafe { (*a).mark_cancelled() };
        h.complete(a); // queue drains with no waiters
        let late = h.spawn(None, Deps::new().write(&x));
        assert!(h.is_ready(late));
        assert!(
            unsafe { (*late).is_cancelled() },
            "late registrant on a poisoned address is cancelled"
        );
        h.complete(late);
    }

    #[test]
    fn reader_batch_poisoned_by_failed_writer() {
        let h = Harness::new();
        let x = 1u64;
        let w = h.spawn(None, Deps::new().write(&x));
        let r1 = h.spawn(None, Deps::new().read(&x));
        let r2 = h.spawn(None, Deps::new().read(&x));
        unsafe { (*w).mark_cancelled() };
        h.complete(w);
        assert!(h.is_ready(r1) && h.is_ready(r2));
        assert!(unsafe { (*r1).is_cancelled() } && unsafe { (*r2).is_cancelled() });
        h.complete(r1);
        h.complete(r2);
    }

    #[test]
    fn poison_crosses_addresses_through_multi_access_tasks() {
        let h = Harness::new();
        let x = 1u64;
        let y = 2u64;
        let a = h.spawn(None, Deps::new().write(&x));
        let b = h.spawn(None, Deps::new().write(&x).write(&y));
        let c = h.spawn(None, Deps::new().write(&y));
        unsafe { (*a).mark_cancelled() };
        h.complete(a);
        assert!(unsafe { (*b).is_cancelled() }, "poisoned via x");
        h.complete(b);
        assert!(
            unsafe { (*c).is_cancelled() },
            "b's cancellation taints its y access too"
        );
        h.complete(c);
    }

    #[test]
    fn tasks_freed_after_release() {
        let h = Harness::new();
        let x = 1u64;
        let a = h.spawn(None, Deps::new().write(&x));
        h.complete(a);
        assert!(h.hooks.freed.lock().contains(&unsafe { (*a).id }));
    }
}
