//! The `DataAccess` structure and the message/mailbox machinery of the
//! Atomic State Machine (Listings 1–2 and Figure 2 of the paper).

use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use super::flags;
use super::reduction::ReductionInfo;
use crate::task::Task;

/// One data access of one task: a memory address plus an atomic flags
/// word (the ASM state), the `successor`/`child` links of the access tree
/// (Figure 1) and an upward notification link installed when the
/// surrounding dependency domain closes.
///
/// Mirrors Listing 1 of the paper; the extra `notify_up` pointer is how a
/// finished child chain reports `CHILD_DONE` to the parent access without
/// the parent polling.
pub struct DataAccess {
    /// ASM state. Low two bits: immutable access type; rest: monotone
    /// state flags (see [`crate::deps::flags`]).
    pub flags: AtomicU64,
    /// Address this access depends on.
    pub addr: usize,
    /// Owning task.
    pub task: *mut Task,
    /// Next access to `addr` among sibling tasks.
    pub successor: AtomicPtr<DataAccess>,
    /// First access to `addr` among child tasks.
    pub child: AtomicPtr<DataAccess>,
    /// Access (in the parent task) to report CHILD_DONE to when this is
    /// the last access of a closed domain chain.
    pub notify_up: AtomicPtr<DataAccess>,
    /// Reduction chain state (reduction accesses only).
    pub reduction: Option<Arc<ReductionInfo>>,
}

unsafe impl Send for DataAccess {}
unsafe impl Sync for DataAccess {}

impl DataAccess {
    /// Create an access with the given immutable type bits already set.
    pub fn new(
        addr: usize,
        type_bits: u64,
        task: *mut Task,
        reduction: Option<Arc<ReductionInfo>>,
    ) -> Self {
        debug_assert_eq!(type_bits & !flags::TYPE_MASK, 0);
        Self {
            flags: AtomicU64::new(type_bits),
            addr,
            task,
            successor: AtomicPtr::new(core::ptr::null_mut()),
            child: AtomicPtr::new(core::ptr::null_mut()),
            notify_up: AtomicPtr::new(core::ptr::null_mut()),
            reduction,
        }
    }

    /// Current flags (Acquire).
    #[inline]
    pub fn load_flags(&self) -> u64 {
        self.flags.load(Ordering::Acquire)
    }

    /// Immutable type bits.
    #[inline]
    pub fn type_bits(&self) -> u64 {
        flags::type_of(self.flags.load(Ordering::Relaxed))
    }
}

/// A message: flags to OR into the target access, plus flags to OR into
/// the originator as a delivery notification — exactly the
/// `DataAccessMessage` of Listing 2.
///
/// `from` may be null when no acknowledgement is needed (e.g. initial
/// satisfiability seeded at registration).
#[derive(Clone, Copy, Debug)]
pub struct Message {
    /// Target access.
    pub to: *mut DataAccess,
    /// Flags delivered to the target (`flagsForNext`).
    pub flags_for_next: u64,
    /// Originator to acknowledge (`flagsAfterPropagation` target).
    pub from: *mut DataAccess,
    /// Flags OR-ed into `from` after the delivery.
    pub flags_after: u64,
}

impl Message {
    /// A message with no acknowledgement side.
    pub fn oneway(to: *mut DataAccess, flags_for_next: u64) -> Self {
        Self {
            to,
            flags_for_next,
            from: core::ptr::null_mut(),
            flags_after: 0,
        }
    }

    /// A message that acknowledges `from` with `flags_after` once
    /// delivered.
    pub fn with_ack(
        to: *mut DataAccess,
        flags_for_next: u64,
        from: *mut DataAccess,
        flags_after: u64,
    ) -> Self {
        Self {
            to,
            flags_for_next,
            from,
            flags_after,
        }
    }
}

/// Per-thread queue of undelivered messages (Figure 2). Plain LIFO: the
/// order of deliveries does not affect correctness (flags are monotone and
/// rules are crossing-triggered), so the cheapest container wins.
#[derive(Default)]
pub struct MailBox {
    queue: Vec<Message>,
}

impl MailBox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self { queue: Vec::new() }
    }

    /// Enqueue a message for later delivery.
    #[inline]
    pub fn push(&mut self, m: Message) {
        self.queue.push(m);
    }

    /// Dequeue the next message.
    #[inline]
    pub fn pop(&mut self) -> Option<Message> {
        self.queue.pop()
    }

    /// True when no messages are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pending message count.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_starts_with_type_bits_only() {
        let a = DataAccess::new(0x100, flags::TYPE_WRITE, core::ptr::null_mut(), None);
        assert_eq!(a.load_flags(), flags::TYPE_WRITE);
        assert_eq!(a.type_bits(), flags::TYPE_WRITE);
        assert!(a.successor.load(Ordering::Relaxed).is_null());
    }

    #[test]
    fn mailbox_lifo() {
        let mut mb = MailBox::new();
        assert!(mb.is_empty());
        let a = Message::oneway(core::ptr::null_mut(), 1);
        let b = Message::oneway(core::ptr::null_mut(), 2);
        mb.push(a);
        mb.push(b);
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.pop().unwrap().flags_for_next, 2);
        assert_eq!(mb.pop().unwrap().flags_for_next, 1);
        assert!(mb.pop().is_none());
    }

    #[test]
    fn message_constructors() {
        let m = Message::oneway(core::ptr::null_mut(), flags::READ_SAT);
        assert!(m.from.is_null());
        assert_eq!(m.flags_after, 0);
        let a = DataAccess::new(0, flags::TYPE_READ, core::ptr::null_mut(), None);
        let ack = Message::with_ack(
            core::ptr::null_mut(),
            flags::READ_SAT,
            &a as *const _ as *mut _,
            flags::ACK_R_SUCC,
        );
        assert!(!ack.from.is_null());
        assert_eq!(ack.flags_after, flags::ACK_R_SUCC);
    }
}
