//! Data dependency systems.
//!
//! Two interchangeable implementations of the same task-ordering
//! semantics, matching the paper's §6.2 ablation axis:
//!
//! * [`wait_free`] — the paper's contribution: per-access Atomic State
//!   Machines driven by message deliveries (fetch-OR), wait-free
//!   registration and release, full support for dependencies across
//!   nesting levels and reduction chains.
//! * [`locking`] — the *previous* Nanos6 design the paper replaced:
//!   per-address queues under sharded fine-grained locks.
//!
//! Both plug into the runtime through [`DependencySystem`].

pub mod access;
pub mod flags;
pub mod locking;
pub mod reduction;
pub mod wait_free;

use std::sync::Arc;

use crate::task::Task;
pub use reduction::RedOp;
use reduction::ReductionInfo;

/// How a task uses an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// `in`: concurrent with other reads, ordered after prior writes.
    Read,
    /// `out`: exclusive.
    Write,
    /// `inout`: exclusive.
    ReadWrite,
    /// Reduction: concurrent with same-op reductions, combined on exit.
    Reduction(RedOp),
}

impl AccessMode {
    /// The ASM type bits for this mode.
    pub fn type_bits(self) -> u64 {
        match self {
            AccessMode::Read => flags::TYPE_READ,
            AccessMode::Write => flags::TYPE_WRITE,
            AccessMode::ReadWrite => flags::TYPE_READWRITE,
            AccessMode::Reduction(_) => flags::TYPE_REDUCTION,
        }
    }

    /// True for `Reduction`.
    pub fn is_reduction(self) -> bool {
        matches!(self, AccessMode::Reduction(_))
    }

    /// The reduction operation, if any.
    pub fn red_op(self) -> Option<RedOp> {
        match self {
            AccessMode::Reduction(op) => Some(op),
            _ => None,
        }
    }
}

/// One declared access of a task.
#[derive(Clone)]
pub struct AccessDecl {
    /// Base address (the dependency key).
    pub addr: usize,
    /// Region length in bytes (used by reductions).
    pub len: usize,
    /// Access mode.
    pub mode: AccessMode,
    /// Reduction chain state, attached during registration.
    pub reduction: Option<Arc<ReductionInfo>>,
}

impl AccessDecl {
    /// Build a declaration.
    pub fn new(addr: usize, len: usize, mode: AccessMode) -> Self {
        Self {
            addr,
            len,
            mode,
            reduction: None,
        }
    }
}

/// Builder for a task's dependency list — the library-level equivalent of
/// the `in(...)/out(...)/inout(...)/reduction(...)` pragma clauses.
///
/// ```
/// use nanotask_core::{Deps, RedOp};
/// let x = 1.0f64;
/// let mut acc = 0.0f64;
/// let deps = Deps::new().read(&x).reduce(&acc, RedOp::SumF64);
/// assert_eq!(deps.len(), 2);
/// ```
#[derive(Default, Clone)]
pub struct Deps {
    list: Vec<AccessDecl>,
}

impl Deps {
    /// Empty dependency list.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, addr: usize, len: usize, mode: AccessMode) -> Self {
        debug_assert!(
            !self.list.iter().any(|d| d.addr == addr),
            "duplicate dependency on address {addr:#x}"
        );
        self.list.push(AccessDecl::new(addr, len, mode));
        self
    }

    /// Declare a read (`in`) dependency on `v`.
    pub fn read<T>(self, v: &T) -> Self {
        self.push(
            v as *const T as usize,
            core::mem::size_of::<T>(),
            AccessMode::Read,
        )
    }

    /// Declare a write (`out`) dependency on `v`.
    pub fn write<T>(self, v: &T) -> Self {
        self.push(
            v as *const T as usize,
            core::mem::size_of::<T>(),
            AccessMode::Write,
        )
    }

    /// Declare a read-write (`inout`) dependency on `v`.
    pub fn readwrite<T>(self, v: &T) -> Self {
        self.push(
            v as *const T as usize,
            core::mem::size_of::<T>(),
            AccessMode::ReadWrite,
        )
    }

    /// Declare a reduction on scalar `v`.
    pub fn reduce<T>(self, v: &T, op: RedOp) -> Self {
        self.push(
            v as *const T as usize,
            core::mem::size_of::<T>(),
            AccessMode::Reduction(op),
        )
    }

    /// Declare a read dependency on a raw address (multi-dependency use).
    pub fn read_addr(self, addr: usize) -> Self {
        self.push(addr, 0, AccessMode::Read)
    }

    /// Declare a write dependency on a raw address.
    pub fn write_addr(self, addr: usize) -> Self {
        self.push(addr, 0, AccessMode::Write)
    }

    /// Declare a read-write dependency on a raw address.
    pub fn readwrite_addr(self, addr: usize) -> Self {
        self.push(addr, 0, AccessMode::ReadWrite)
    }

    /// Declare a reduction over `len` bytes at a raw address.
    pub fn reduce_addr(self, addr: usize, len: usize, op: RedOp) -> Self {
        self.push(addr, len, AccessMode::Reduction(op))
    }

    /// Number of declared accesses.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no accesses were declared.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Borrow the declaration list (inspection, e.g. graph capture).
    pub fn decls(&self) -> &[AccessDecl] {
        &self.list
    }

    /// Consume into the declaration list.
    pub fn into_decls(self) -> Vec<AccessDecl> {
        self.list
    }

    /// Rebuild a `Deps` from a previously captured declaration list
    /// (the replay system's re-record fallback path).
    pub fn from_decls(list: Vec<AccessDecl>) -> Self {
        Self { list }
    }
}

/// Which dependency implementation a runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DepsKind {
    /// The paper's wait-free Atomic State Machine system (§2).
    #[default]
    WaitFree,
    /// The fine-grained-locking baseline ("w/o wait-free dependencies").
    Locking,
}

/// Callbacks the dependency systems raise into the runtime.
///
/// # Safety
/// Pointers are live tasks; `task_ready` may be called from any thread,
/// at most once per task; `task_free` exactly once when the last removal
/// reference drops.
pub unsafe trait DepHooks {
    /// The task's last blocker cleared: hand it to the scheduler.
    fn task_ready(&self, task: *mut Task);
    /// Several tasks lost their last blocker in one release operation
    /// (e.g. a completing writer waking a reader batch). The default
    /// forwards to [`DepHooks::task_ready`] per task; the runtime
    /// overrides it to hand the whole batch to the scheduler in one
    /// operation when batched release is enabled.
    fn task_ready_batch(&self, tasks: &[*mut Task]) {
        for &t in tasks {
            self.task_ready(t);
        }
    }
    /// All references dropped: reclaim the task's memory.
    fn task_free(&self, task: *mut Task);
    /// A dependency edge was discovered (successor/child link); used by
    /// the Figure 1 graph dump. `kind` is 0 = successor, 1 = child.
    fn edge(&self, _from: *mut Task, _to: *mut Task, _addr: usize, _kind: u8) {}
    /// Number of workers (for reduction slot sizing).
    fn nworkers(&self) -> usize;
    /// The allocator runtime objects (ASM arrays) are drawn from.
    fn allocator(&self) -> &dyn nanotask_alloc::RuntimeAllocator;
}

/// A pluggable dependency system.
///
/// # Safety
/// All methods take raw task pointers that must be live; `register` must
/// be called from the creating (parent-executing) thread — the
/// single-creator invariant both implementations rely on.
pub unsafe trait DependencySystem: Send + Sync {
    /// Register every declared access of `task`, linking it into the
    /// dependency structures. After this returns the creator must drop
    /// the creation guard (`Task::unblock`) and schedule if ready.
    ///
    /// # Safety
    /// `task` must be live and unpublished; the caller must be the thread
    /// executing the task's parent (single-creator invariant).
    unsafe fn register(&self, task: *mut Task, hooks: &dyn DepHooks);

    /// The task's body finished executing on the current thread.
    ///
    /// # Safety
    /// `task` must be live, registered, and its body returned; called
    /// exactly once, by the executing worker.
    unsafe fn body_done(&self, task: *mut Task, hooks: &dyn DepHooks);

    /// The task's whole subtree finished.
    ///
    /// # Safety
    /// `task` must be live with `body_done` already called and every
    /// child fully done; called exactly once.
    unsafe fn fully_done(&self, task: *mut Task, hooks: &dyn DepHooks);

    /// Implementation identifier.
    fn kind(&self) -> DepsKind;

    /// Clear run-scoped failure-propagation state at a run boundary
    /// (called by the runtime between runs, never concurrently with
    /// register/complete traffic). The wait-free system's POISON flags
    /// live on the per-run access chains and are reclaimed with the
    /// tasks, so the default is a no-op; the locking system's sticky
    /// poisoned address queues outlive their tasks by design (late
    /// registrants of the same run must still observe the failure) and
    /// are dropped here so the next run starts clean.
    fn reset_faults(&self) {}

    /// Barrier-scoped variant of [`DependencySystem::reset_faults`] for
    /// recovery *inside* a run: `parent`'s child dependency domain is
    /// still open (its body has not returned), so poison state reachable
    /// only through that domain — the wait-free system's chain-bottom
    /// accesses, which future registrants link after — is healed too.
    /// The default forwards to [`DependencySystem::reset_faults`], which
    /// covers the locking system's address queues.
    ///
    /// # Safety
    /// `parent` must be live, the caller must be the thread executing
    /// its body (single-creator invariant), and no tasks may be in
    /// flight (taskwait barrier): the reset clears otherwise-monotone
    /// ASM flag bits and must not race deliveries.
    unsafe fn reset_faults_under(&self, _parent: *mut Task) {
        self.reset_faults();
    }
}

/// Instantiate the dependency system of the given kind.
pub fn make_deps(kind: DepsKind) -> Arc<dyn DependencySystem> {
    match kind {
        DepsKind::WaitFree => Arc::new(wait_free::WaitFreeDeps::new()),
        DepsKind::Locking => Arc::new(locking::LockingDeps::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_builder_modes() {
        let a = 1u64;
        let b = 2u64;
        let c = 3.0f64;
        let deps = Deps::new().read(&a).write(&b).reduce(&c, RedOp::SumF64);
        let decls = deps.into_decls();
        assert_eq!(decls.len(), 3);
        assert_eq!(decls[0].mode, AccessMode::Read);
        assert_eq!(decls[0].addr, &a as *const u64 as usize);
        assert_eq!(decls[1].mode, AccessMode::Write);
        assert_eq!(decls[2].mode, AccessMode::Reduction(RedOp::SumF64));
        assert_eq!(decls[2].len, 8);
    }

    #[test]
    fn raw_addr_builders() {
        let deps = Deps::new()
            .read_addr(0x10)
            .write_addr(0x20)
            .readwrite_addr(0x30)
            .reduce_addr(0x40, 16, RedOp::SumU64);
        assert_eq!(deps.len(), 4);
        assert!(!deps.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate dependency")]
    #[cfg(debug_assertions)]
    fn duplicate_addr_panics_in_debug() {
        let a = 1u64;
        let _ = Deps::new().read(&a).write(&a);
    }

    #[test]
    fn mode_type_bits() {
        assert_eq!(AccessMode::Read.type_bits(), flags::TYPE_READ);
        assert_eq!(AccessMode::Write.type_bits(), flags::TYPE_WRITE);
        assert_eq!(AccessMode::ReadWrite.type_bits(), flags::TYPE_READWRITE);
        assert_eq!(
            AccessMode::Reduction(RedOp::SumF64).type_bits(),
            flags::TYPE_REDUCTION
        );
        assert!(AccessMode::Reduction(RedOp::SumF64).is_reduction());
        assert_eq!(AccessMode::Read.red_op(), None);
    }
}
