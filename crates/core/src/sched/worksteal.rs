//! Work-stealing scheduler — the §6.3 comparator.
//!
//! "Both the LLVM, AMD AOCC and Intel OpenMP runtime are based on a
//! work-stealing scheduler, which will allow us to determine if our
//! centralized delegation-based implementation can outperform
//! work-stealing runtimes."
//!
//! Per-worker deques protected by small mutexes (which is what GOMP and
//! the LLVM OpenMP runtime actually do — neither uses a lock-free
//! Chase–Lev deque for tasks), local push/pop on one end, steals from the
//! other end of a victim chosen by round-robin probing from a random
//! start. The §3 observation this exists to demonstrate: "on the typical
//! application design pattern in which a single thread creates all tasks,
//! work-stealing behaves similarly to the global lock approach because
//! most threads need to steal work from a single creator queue".

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use nanotask_locks::CachePadded;
use parking_lot::Mutex;
use std::collections::VecDeque;

use super::{Rec, SchedCounters, SchedKind, SchedOpStats, Scheduler, TaskPtr, WsVariant};

/// Work-stealing scheduler with one deque per worker.
pub struct WorkStealScheduler {
    deques: Box<[CachePadded<Mutex<VecDeque<TaskPtr>>>]>,
    seeds: Box<[CachePadded<AtomicU64>]>,
    variant: WsVariant,
    counters: SchedCounters,
    len: AtomicUsize,
}

impl WorkStealScheduler {
    /// Create a scheduler for `workers` workers.
    pub fn new(workers: usize, variant: WsVariant) -> Self {
        let n = workers.max(1);
        Self {
            deques: (0..n)
                .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
                .collect(),
            seeds: (0..n)
                .map(|i| CachePadded::new(AtomicU64::new(0x9E37_79B9 ^ (i as u64 + 1))))
                .collect(),
            variant,
            counters: SchedCounters::default(),
            len: AtomicUsize::new(0),
        }
    }

    /// xorshift step on the worker's private seed.
    fn next_rand(&self, worker: usize) -> u64 {
        let s = &self.seeds[worker % self.seeds.len()];
        let mut x = s.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.store(x, Ordering::Relaxed);
        x
    }

    fn pop_local(&self, worker: usize) -> Option<TaskPtr> {
        let mut dq = self.deques[worker].lock();
        match self.variant {
            WsVariant::LifoLocal => dq.pop_back(),
            WsVariant::FifoLocal => dq.pop_front(),
        }
    }

    fn steal(&self, thief: usize) -> Option<TaskPtr> {
        let n = self.deques.len();
        if n <= 1 {
            return None;
        }
        let start = (self.next_rand(thief) as usize) % n;
        for i in 0..n {
            let victim = (start + i) % n;
            if victim == thief {
                continue;
            }
            // Steal the *oldest* task (opposite end of LIFO local pops):
            // the standard work-stealing discipline.
            if let Some(t) = self.deques[victim].lock().pop_front() {
                return Some(t);
            }
        }
        None
    }
}

impl Scheduler for WorkStealScheduler {
    fn add_ready(&self, task: TaskPtr, worker: usize, rec: Rec<'_>) {
        if let Some(r) = rec {
            r.record(nanotask_trace::EventKind::AddReady, unsafe { (*task.0).id });
        }
        self.counters.add();
        self.len.fetch_add(1, Ordering::Relaxed);
        let mut dq = self.deques[worker % self.deques.len()].lock();
        self.counters.lock();
        dq.push_back(task);
    }

    fn add_ready_batch(&self, tasks: &[TaskPtr], worker: usize, rec: Rec<'_>) {
        match tasks {
            [] => return,
            [t] => return self.add_ready(*t, worker, rec),
            _ => {}
        }
        if let Some(r) = rec {
            r.record(nanotask_trace::EventKind::ReadyBatch, tasks.len() as u64);
        }
        self.counters.batch(tasks.len());
        self.len.fetch_add(tasks.len(), Ordering::Relaxed);
        // One deque-lock acquisition pushes the whole released batch.
        let mut dq = self.deques[worker % self.deques.len()].lock();
        self.counters.lock();
        dq.extend(tasks.iter().copied());
    }

    fn get_ready(&self, worker: usize, _rec: Rec<'_>) -> Option<TaskPtr> {
        let w = worker % self.deques.len();
        let t = self.pop_local(w).or_else(|| self.steal(w));
        if t.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.counters.pop();
        }
        t
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn kind(&self) -> SchedKind {
        SchedKind::WorkSteal(self.variant)
    }

    fn op_stats(&self) -> SchedOpStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use std::sync::Arc;

    fn fake(n: usize) -> TaskPtr {
        TaskPtr(n as *mut Task)
    }

    #[test]
    fn local_lifo_order() {
        let s = WorkStealScheduler::new(2, WsVariant::LifoLocal);
        s.add_ready(fake(1), 0, None);
        s.add_ready(fake(2), 0, None);
        assert_eq!(s.get_ready(0, None), Some(fake(2)));
        assert_eq!(s.get_ready(0, None), Some(fake(1)));
    }

    #[test]
    fn local_fifo_order() {
        let s = WorkStealScheduler::new(2, WsVariant::FifoLocal);
        s.add_ready(fake(1), 0, None);
        s.add_ready(fake(2), 0, None);
        assert_eq!(s.get_ready(0, None), Some(fake(1)));
        assert_eq!(s.get_ready(0, None), Some(fake(2)));
    }

    #[test]
    fn steals_oldest_from_victim() {
        let s = WorkStealScheduler::new(2, WsVariant::LifoLocal);
        s.add_ready(fake(1), 0, None);
        s.add_ready(fake(2), 0, None);
        // Worker 1 has nothing: it must steal worker 0's oldest task.
        assert_eq!(s.get_ready(1, None), Some(fake(1)));
        assert_eq!(s.get_ready(0, None), Some(fake(2)));
        assert_eq!(s.get_ready(1, None), None);
    }

    #[test]
    fn single_worker_cannot_steal() {
        let s = WorkStealScheduler::new(1, WsVariant::LifoLocal);
        assert_eq!(s.get_ready(0, None), None);
        s.add_ready(fake(1), 0, None);
        assert_eq!(s.get_ready(0, None), Some(fake(1)));
    }

    #[test]
    fn batch_add_one_deque_lock() {
        let s = WorkStealScheduler::new(2, WsVariant::FifoLocal);
        let batch: Vec<TaskPtr> = (1..=5).map(fake).collect();
        s.add_ready_batch(&batch, 0, None);
        let ops = s.op_stats();
        assert_eq!(ops.batch_adds, 1);
        assert_eq!(ops.batch_tasks, 5);
        assert_eq!(ops.lock_acquisitions, 1);
        let mut got = vec![];
        while let Some(t) = s.get_ready(0, None) {
            got.push(t.0 as usize);
        }
        assert_eq!(got, (1..=5).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_conservation() {
        const COUNT: usize = 20_000;
        let s = Arc::new(WorkStealScheduler::new(4, WsVariant::LifoLocal));
        let prod = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..COUNT {
                    s.add_ready(fake(i + 1), 0, None);
                }
            })
        };
        let thieves: Vec<_> = (1..4)
            .map(|w| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 5_000 {
                        match s.get_ready(w, None) {
                            Some(t) => {
                                got.push(t.0 as usize);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        prod.join().unwrap();
        let mut all: Vec<usize> = thieves
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        while let Some(t) = s.get_ready(0, None) {
            all.push(t.0 as usize);
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), COUNT);
    }
}
