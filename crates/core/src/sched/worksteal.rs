//! Work-stealing scheduler — the §6.3 comparator.
//!
//! "Both the LLVM, AMD AOCC and Intel OpenMP runtime are based on a
//! work-stealing scheduler, which will allow us to determine if our
//! centralized delegation-based implementation can outperform
//! work-stealing runtimes."
//!
//! Per-worker deques protected by small mutexes (which is what GOMP and
//! the LLVM OpenMP runtime actually do — neither uses a lock-free
//! Chase–Lev deque for tasks), local push/pop on one end, steals from the
//! other end of a victim chosen by round-robin probing from a random
//! start. The §3 observation this exists to demonstrate: "on the typical
//! application design pattern in which a single thread creates all tasks,
//! work-stealing behaves similarly to the global lock approach because
//! most threads need to steal work from a single creator queue".

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use nanotask_locks::CachePadded;
use nanotask_obs::Registry;
use parking_lot::Mutex;
use std::collections::VecDeque;

use super::{
    NodeOpStats, Rec, SchedCounters, SchedKind, SchedOpStats, Scheduler, TaskPtr, WsVariant,
};
use crate::platform::Topology;

/// Work-stealing scheduler with one deque per worker.
pub struct WorkStealScheduler {
    deques: Box<[CachePadded<Mutex<VecDeque<TaskPtr>>>]>,
    seeds: Box<[CachePadded<AtomicU64>]>,
    /// Worker→NUMA-node placement: node-targeted batches go to a deque
    /// of a worker on the target node (round-robin within the node).
    topo: Topology,
    /// Round-robin cursor per node for targeted insertion.
    rr: Box<[CachePadded<AtomicUsize>]>,
    /// Workers of each node, precomputed so the targeted hot path never
    /// allocates.
    node_members: Box<[Box<[usize]>]>,
    variant: WsVariant,
    counters: SchedCounters,
    len: AtomicUsize,
}

impl WorkStealScheduler {
    /// Create a scheduler for `workers` workers over `numa_nodes` nodes
    /// (the node map only matters for node-targeted insertion; local
    /// pushes and steals are per-worker as before).
    pub fn new(workers: usize, numa_nodes: usize, variant: WsVariant) -> Self {
        let n = workers.max(1);
        let topo = Topology::contiguous(n, numa_nodes);
        let nodes = topo.nodes();
        let node_members: Box<[Box<[usize]>]> =
            (0..nodes).map(|nd| topo.workers_of(nd).collect()).collect();
        Self {
            deques: (0..n)
                .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
                .collect(),
            seeds: (0..n)
                .map(|i| CachePadded::new(AtomicU64::new(0x9E37_79B9 ^ (i as u64 + 1))))
                .collect(),
            topo,
            rr: (0..nodes)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            node_members,
            variant,
            counters: SchedCounters::detached(n, nodes),
            len: AtomicUsize::new(0),
        }
    }

    /// Bind the operation counters to a shared metrics registry
    /// (`None` keeps the private detached counters).
    pub fn with_registry(mut self, reg: Option<&Registry>) -> Self {
        if let Some(reg) = reg {
            self.counters = SchedCounters::new(reg, self.topo.nodes());
        }
        self
    }

    /// xorshift step on the worker's private seed.
    fn next_rand(&self, worker: usize) -> u64 {
        let s = &self.seeds[worker % self.seeds.len()];
        let mut x = s.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.store(x, Ordering::Relaxed);
        x
    }

    fn pop_local(&self, worker: usize) -> Option<TaskPtr> {
        let mut dq = self.deques[worker].lock();
        match self.variant {
            WsVariant::LifoLocal => dq.pop_back(),
            WsVariant::FifoLocal => dq.pop_front(),
        }
    }

    fn steal(&self, thief: usize) -> Option<TaskPtr> {
        let n = self.deques.len();
        if n <= 1 {
            return None;
        }
        let start = (self.next_rand(thief) as usize) % n;
        for i in 0..n {
            let victim = (start + i) % n;
            if victim == thief {
                continue;
            }
            // Steal the *oldest* task (opposite end of LIFO local pops):
            // the standard work-stealing discipline.
            if let Some(t) = self.deques[victim].lock().pop_front() {
                return Some(t);
            }
        }
        None
    }
}

impl Scheduler for WorkStealScheduler {
    fn add_ready(&self, task: TaskPtr, worker: usize, rec: Rec<'_>) {
        if let Some(r) = rec {
            r.record(nanotask_trace::EventKind::AddReady, unsafe { (*task.0).id });
        }
        self.counters.add(worker);
        self.len.fetch_add(1, Ordering::Relaxed);
        let w = worker % self.deques.len();
        self.counters.node_home(worker, self.topo.node_of(w), 1);
        let mut dq = self.deques[w].lock();
        self.counters.lock(worker);
        dq.push_back(task);
    }

    fn add_ready_batch(&self, tasks: &[TaskPtr], worker: usize, rec: Rec<'_>) {
        match tasks {
            [] => return,
            [t] => return self.add_ready(*t, worker, rec),
            _ => {}
        }
        if let Some(r) = rec {
            r.record(nanotask_trace::EventKind::ReadyBatch, tasks.len() as u64);
        }
        self.counters.batch(worker, tasks.len());
        self.len.fetch_add(tasks.len(), Ordering::Relaxed);
        let w = worker % self.deques.len();
        self.counters
            .node_home(worker, self.topo.node_of(w), tasks.len() as u64);
        // One deque-lock acquisition pushes the whole released batch.
        let mut dq = self.deques[w].lock();
        self.counters.lock(worker);
        dq.extend(tasks.iter().copied());
    }

    fn add_ready_batch_to(&self, node: usize, tasks: &[TaskPtr], worker: usize, rec: Rec<'_>) {
        if tasks.is_empty() {
            return;
        }
        if let Some(r) = rec {
            r.record(
                nanotask_trace::EventKind::NodeReadyBatch,
                ((node as u64) << 32) | tasks.len() as u64,
            );
        }
        self.counters.targeted(worker, tasks.len());
        self.len.fetch_add(tasks.len(), Ordering::Relaxed);
        // A deque of a worker on the target node, round-robin within the
        // node so one hot partition does not pile onto a single deque.
        let node = node.min(self.topo.nodes() - 1);
        self.counters
            .node_targeted(worker, node, tasks.len() as u64);
        let members = &self.node_members[node];
        let k = self.rr[node].fetch_add(1, Ordering::Relaxed) % members.len().max(1);
        let target = members.get(k).copied().unwrap_or(0);
        let mut dq = self.deques[target].lock();
        self.counters.lock(worker);
        dq.extend(tasks.iter().copied());
    }

    fn get_ready(&self, worker: usize, _rec: Rec<'_>) -> Option<TaskPtr> {
        let w = worker % self.deques.len();
        let t = self.pop_local(w).or_else(|| self.steal(w));
        if t.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.counters.pop(worker);
        }
        t
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn kind(&self) -> SchedKind {
        SchedKind::WorkSteal(self.variant)
    }

    fn op_stats(&self) -> SchedOpStats {
        self.counters.snapshot()
    }

    fn node_stats(&self) -> Vec<NodeOpStats> {
        self.counters.node_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use std::sync::Arc;

    fn fake(n: usize) -> TaskPtr {
        TaskPtr(n as *mut Task)
    }

    #[test]
    fn local_lifo_order() {
        let s = WorkStealScheduler::new(2, 1, WsVariant::LifoLocal);
        s.add_ready(fake(1), 0, None);
        s.add_ready(fake(2), 0, None);
        assert_eq!(s.get_ready(0, None), Some(fake(2)));
        assert_eq!(s.get_ready(0, None), Some(fake(1)));
    }

    #[test]
    fn local_fifo_order() {
        let s = WorkStealScheduler::new(2, 1, WsVariant::FifoLocal);
        s.add_ready(fake(1), 0, None);
        s.add_ready(fake(2), 0, None);
        assert_eq!(s.get_ready(0, None), Some(fake(1)));
        assert_eq!(s.get_ready(0, None), Some(fake(2)));
    }

    #[test]
    fn steals_oldest_from_victim() {
        let s = WorkStealScheduler::new(2, 1, WsVariant::LifoLocal);
        s.add_ready(fake(1), 0, None);
        s.add_ready(fake(2), 0, None);
        // Worker 1 has nothing: it must steal worker 0's oldest task.
        assert_eq!(s.get_ready(1, None), Some(fake(1)));
        assert_eq!(s.get_ready(0, None), Some(fake(2)));
        assert_eq!(s.get_ready(1, None), None);
    }

    #[test]
    fn single_worker_cannot_steal() {
        let s = WorkStealScheduler::new(1, 1, WsVariant::LifoLocal);
        assert_eq!(s.get_ready(0, None), None);
        s.add_ready(fake(1), 0, None);
        assert_eq!(s.get_ready(0, None), Some(fake(1)));
    }

    #[test]
    fn batch_add_one_deque_lock() {
        let s = WorkStealScheduler::new(2, 1, WsVariant::FifoLocal);
        let batch: Vec<TaskPtr> = (1..=5).map(fake).collect();
        s.add_ready_batch(&batch, 0, None);
        let ops = s.op_stats();
        assert_eq!(ops.batch_adds, 1);
        assert_eq!(ops.batch_tasks, 5);
        assert_eq!(ops.lock_acquisitions, 1);
        let mut got = vec![];
        while let Some(t) = s.get_ready(0, None) {
            got.push(t.0 as usize);
        }
        assert_eq!(got, (1..=5).collect::<Vec<_>>());
    }

    #[test]
    fn targeted_batch_lands_on_target_node_deques() {
        // 4 workers over 2 nodes: node 1 = workers {2, 3}. A batch
        // targeted at node 1 must be poppable locally by those workers
        // without stealing.
        let s = WorkStealScheduler::new(4, 2, WsVariant::FifoLocal);
        let batch: Vec<TaskPtr> = (1..=4).map(fake).collect();
        s.add_ready_batch_to(1, &batch, 0, None);
        let ns = s.node_stats();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[1].targeted_tasks, 4, "{ns:?}");
        assert_eq!(ns[0].targeted_tasks, 0, "{ns:?}");
        let mut local = vec![];
        while let Some(t) = s.pop_local(2).or_else(|| s.pop_local(3)) {
            local.push(t.0 as usize);
        }
        local.sort();
        assert_eq!(local, (1..=4).collect::<Vec<_>>(), "all on node-1 deques");
        let ops = s.op_stats();
        assert_eq!(ops.targeted_batch_adds, 1);
        assert_eq!(ops.targeted_tasks, 4);
    }

    #[test]
    fn targeted_round_robin_spreads_within_node() {
        let s = WorkStealScheduler::new(4, 2, WsVariant::FifoLocal);
        s.add_ready_batch_to(0, &[fake(1), fake(2)], 3, None);
        s.add_ready_batch_to(0, &[fake(3), fake(4)], 3, None);
        // Two batches round-robin over node 0's workers {0, 1}.
        assert!(s.pop_local(0).is_some(), "worker 0 got a batch");
        assert!(s.pop_local(1).is_some(), "worker 1 got the next batch");
    }

    #[test]
    fn concurrent_conservation() {
        const COUNT: usize = 20_000;
        let s = Arc::new(WorkStealScheduler::new(4, 1, WsVariant::LifoLocal));
        let prod = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..COUNT {
                    s.add_ready(fake(i + 1), 0, None);
                }
            })
        };
        let thieves: Vec<_> = (1..4)
            .map(|w| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 5_000 {
                        match s.get_ready(w, None) {
                            Some(t) => {
                                got.push(t.0 as usize);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        prod.join().unwrap();
        let mut all: Vec<usize> = thieves
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        while let Some(t) = s.get_ready(0, None) {
            all.push(t.0 as usize);
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), COUNT);
    }
}
