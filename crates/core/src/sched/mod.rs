//! Task scheduling system (§3 of the paper).
//!
//! "When a task becomes ready, it is forwarded to the scheduling system.
//! Then, when a core becomes idle, it calls the scheduler to ask for more
//! work." Three interchangeable synchronization strategies implement that
//! contract:
//!
//! * [`sync_sched::SyncScheduler`] — the paper's design (Listing 5):
//!   per-NUMA wait-free SPSC buffers decouple task *insertion* from the
//!   scheduler, and a Delegation Ticket Lock both protects the policy
//!   queue and lets the lock owner *serve* tasks directly to waiting
//!   workers.
//! * [`central::CentralScheduler`] — a single lock around the policy
//!   queue; instantiated with the PTLock it is the "w/o DTLock" ablation
//!   of §6.2, and it accepts any [`RawLock`] for the lock-design studies.
//! * [`worksteal::WorkStealScheduler`] — per-worker deques with stealing,
//!   the architecture of the OpenMP runtimes the paper compares against
//!   in §6.3.

pub mod central;
pub mod sync_sched;
pub mod worksteal;

use nanotask_obs::{Counter, Registry};
use nanotask_trace::CoreRecorder;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use crate::task::Task;

/// Snapshot of scheduler operation counters — the machine-checkable side
/// of the zero-queue fast-path claim (`fig13_inline_succ`): how many
/// tasks entered the ready structures one at a time vs. in batches, how
/// many pops were served from a per-worker cache, and how often the
/// scheduler's lock was actually acquired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedOpStats {
    /// Tasks added one at a time (`add_ready`).
    pub adds: u64,
    /// `add_ready_batch` calls.
    pub batch_adds: u64,
    /// Tasks added through batches.
    pub batch_tasks: u64,
    /// Successful pops (`get_ready` returned a task).
    pub pops: u64,
    /// Pops served from the per-worker pop cache (no lock touched).
    pub pop_cache_hits: u64,
    /// *Global* scheduler-lock acquisitions (DTLock ownership
    /// transitions for the delegation scheduler, central-lock
    /// acquisitions otherwise; work-stealing counts per-deque lock
    /// acquisitions). Deliberately excludes the delegation scheduler's
    /// per-node partition-queue locks and SPSC producer locks: those are
    /// node-local — the whole point of node-targeted insertion is
    /// replacing machine-wide serialization with node-scoped locks, and
    /// this counter measures exactly the machine-wide part.
    pub lock_acquisitions: u64,
    /// `add_ready_batch_to` calls (node-targeted insertion, the NUMA-aware
    /// replay partitioning release path).
    pub targeted_batch_adds: u64,
    /// Tasks added through node-targeted batches.
    pub targeted_tasks: u64,
    /// Partition-routed releases kept as the releasing worker's inline
    /// next task instead of entering their node's queue — the zero-queue
    /// fast path composed with the static schedule. Runtime-side: the
    /// scheduler never sees these (that is the point), so scheduler
    /// snapshots report 0 and `Runtime::run_report` folds the counter in.
    pub inline_routed: u64,
}

/// Per-NUMA-node insertion counters of one scheduler, the
/// machine-checkable side of the NUMA-aware replay partitioning claim
/// (`fig15_numa_replay`): how many tasks entered this node's ready
/// structure because a caller *targeted* it (the replay partitioner's
/// release path) vs because the producing worker happened to live there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeOpStats {
    /// Tasks inserted into this node's structure via
    /// [`Scheduler::add_ready_batch_to`].
    pub targeted_tasks: u64,
    /// Tasks inserted via producer-home routing (`add_ready` /
    /// `add_ready_batch` from a worker placed on this node).
    pub home_tasks: u64,
}

/// Registry-backed counters behind [`SchedOpStats`] and [`NodeOpStats`].
/// Every update is a plain load+store on the calling worker's shard of a
/// [`nanotask_obs::Counter`] (the §5 tracer discipline applied to
/// metrics); the snapshot aggregates shards and is advisory (diagnostics
/// and benchmark reporting, never control flow). Schedulers built
/// through [`make_scheduler`] with a registry share it with the runtime,
/// so `Runtime::run_report` *is* a registry snapshot; schedulers built
/// standalone get [`SchedCounters::detached`] over a private registry.
#[derive(Clone)]
pub(crate) struct SchedCounters {
    adds: Counter,
    batch_adds: Counter,
    batch_tasks: Counter,
    pops: Counter,
    pop_cache_hits: Counter,
    lock_acquisitions: Counter,
    targeted_batch_adds: Counter,
    targeted_tasks: Counter,
    node_targeted: Arc<[Counter]>,
    node_home: Arc<[Counter]>,
}

impl SchedCounters {
    /// Counters registered in `reg`, with one labeled per-node counter
    /// pair per NUMA node (`nodes == 0` for schedulers without per-node
    /// structures).
    pub(crate) fn new(reg: &Registry, nodes: usize) -> Self {
        let node_counter = |name: &'static str, node: usize| {
            reg.counter_with(name, vec![("node", node.to_string())])
        };
        Self {
            adds: reg.counter("nanotask_sched_adds_total"),
            batch_adds: reg.counter("nanotask_sched_batch_adds_total"),
            batch_tasks: reg.counter("nanotask_sched_batch_tasks_total"),
            pops: reg.counter("nanotask_sched_pops_total"),
            pop_cache_hits: reg.counter("nanotask_sched_pop_cache_hits_total"),
            lock_acquisitions: reg.counter("nanotask_sched_lock_acquisitions_total"),
            targeted_batch_adds: reg.counter("nanotask_sched_targeted_batch_adds_total"),
            targeted_tasks: reg.counter("nanotask_sched_targeted_tasks_total"),
            node_targeted: (0..nodes)
                .map(|n| node_counter("nanotask_node_targeted_tasks_total", n))
                .collect(),
            node_home: (0..nodes)
                .map(|n| node_counter("nanotask_node_home_tasks_total", n))
                .collect(),
        }
    }

    /// Counters over a private registry, for schedulers constructed
    /// outside a runtime (unit tests, microbenchmarks).
    pub(crate) fn detached(shards: usize, nodes: usize) -> Self {
        Self::new(&Registry::new(shards), nodes)
    }

    #[inline]
    pub(crate) fn add(&self, worker: usize) {
        self.adds.inc(worker);
    }
    #[inline]
    pub(crate) fn batch(&self, worker: usize, n: usize) {
        self.batch_adds.inc(worker);
        self.batch_tasks.add(worker, n as u64);
    }
    #[inline]
    pub(crate) fn pop(&self, worker: usize) {
        self.pops.inc(worker);
    }
    #[inline]
    pub(crate) fn cache_hit(&self, worker: usize) {
        self.pop_cache_hits.inc(worker);
    }
    #[inline]
    pub(crate) fn lock(&self, worker: usize) {
        self.lock_acquisitions.inc(worker);
    }
    #[inline]
    pub(crate) fn targeted(&self, worker: usize, n: usize) {
        self.targeted_batch_adds.inc(worker);
        self.targeted_tasks.add(worker, n as u64);
    }
    #[inline]
    pub(crate) fn node_home(&self, worker: usize, node: usize, n: u64) {
        if let Some(c) = self.node_home.get(node) {
            c.add(worker, n);
        }
    }
    #[inline]
    pub(crate) fn node_targeted(&self, worker: usize, node: usize, n: u64) {
        if let Some(c) = self.node_targeted.get(node) {
            c.add(worker, n);
        }
    }

    pub(crate) fn snapshot(&self) -> SchedOpStats {
        SchedOpStats {
            adds: self.adds.value(),
            batch_adds: self.batch_adds.value(),
            batch_tasks: self.batch_tasks.value(),
            pops: self.pops.value(),
            pop_cache_hits: self.pop_cache_hits.value(),
            lock_acquisitions: self.lock_acquisitions.value(),
            targeted_batch_adds: self.targeted_batch_adds.value(),
            targeted_tasks: self.targeted_tasks.value(),
            inline_routed: 0,
        }
    }

    pub(crate) fn node_snapshot(&self) -> Vec<NodeOpStats> {
        self.node_targeted
            .iter()
            .zip(self.node_home.iter())
            .map(|(t, h)| NodeOpStats {
                targeted_tasks: t.value(),
                home_tasks: h.value(),
            })
            .collect()
    }
}

/// Send/Sync wrapper for task pointers travelling through queues.
/// `repr(transparent)` so a `&[*mut Task]` can be reinterpreted as a
/// `&[TaskPtr]` without copying (the batched-release hand-off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct TaskPtr(pub *mut Task);

unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// Ordering policy of the (unsynchronized) ready queue — the paper keeps
/// the policy pluggable behind the scheduler lock, which is the stated
/// reason for rejecting a lock-free scheduler design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// First-in first-out (creation order; the paper's Figure 3 example).
    #[default]
    Fifo,
    /// Last-in first-out (depth-first, cache-friendlier for some loads).
    Lifo,
    /// Highest task priority first, FIFO among equals — the OmpSs-2
    /// `priority` clause. Exists partly to demonstrate the paper's §3.2
    /// argument for a lock-protected scheduler: "adding new scheduling
    /// policies should be easy" (a lock-free design would need a new
    /// ad-hoc structure per policy; this one is a 20-line change).
    Priority,
}

/// Heap entry: priority first, then insertion order (older wins ties).
struct PrioEntry {
    prio: i32,
    seq: u64,
    task: TaskPtr,
}

impl PartialEq for PrioEntry {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl Eq for PrioEntry {}
impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Max-heap: higher priority first, then lower seq (FIFO).
        self.prio
            .cmp(&other.prio)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The *unsynchronized* scheduler of Listing 5: a plain queue with a
/// policy. All synchronization lives in the wrapper.
pub struct PolicyQueue {
    q: VecDeque<TaskPtr>,
    heap: BinaryHeap<PrioEntry>,
    policy: Policy,
    seq: u64,
}

impl PolicyQueue {
    /// Empty queue with the given policy.
    pub fn new(policy: Policy) -> Self {
        Self {
            q: VecDeque::new(),
            heap: BinaryHeap::new(),
            policy,
            seq: 0,
        }
    }

    /// Insert a ready task.
    #[inline]
    pub fn push(&mut self, t: TaskPtr) {
        match self.policy {
            Policy::Priority => {
                // SAFETY-free read: priority is an immutable task field
                // written before publication; test doubles pass null-ish
                // fake pointers only under Fifo/Lifo.
                let prio = unsafe { (*t.0).priority };
                self.seq += 1;
                self.heap.push(PrioEntry {
                    prio,
                    seq: self.seq,
                    task: t,
                });
            }
            _ => self.q.push_back(t),
        }
    }

    /// Remove the next task per policy.
    #[inline]
    pub fn pop(&mut self) -> Option<TaskPtr> {
        match self.policy {
            Policy::Fifo => self.q.pop_front(),
            Policy::Lifo => self.q.pop_back(),
            Policy::Priority => self.heap.pop().map(|e| e.task),
        }
    }

    /// Tasks currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len() + self.heap.len()
    }

    /// True when no tasks are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty() && self.heap.is_empty()
    }
}

/// Which lock protects a [`central::CentralScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockKind {
    /// Partitioned Ticket Lock (the "w/o DTLock" ablation).
    #[default]
    PtLock,
    /// Classic ticket lock.
    Ticket,
    /// MCS queue lock.
    Mcs,
    /// Ticket lock with waiting array.
    Twa,
    /// Test-and-set spin lock.
    Spin,
}

/// Work-stealing flavour, modelling the §6.3 OpenMP comparators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WsVariant {
    /// Local LIFO, steal oldest — LLVM/Intel-style.
    #[default]
    LifoLocal,
    /// Local FIFO, steal oldest — GOMP-style shared-queue behaviour.
    FifoLocal,
}

/// Scheduler configuration, the §6 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedKind {
    /// SPSC buffers + Delegation Ticket Lock (the optimized runtime).
    /// §3.1 discusses one global add-buffer up to one per core; the paper
    /// uses one per NUMA node.
    #[default]
    Delegation,
    /// Delegation scheduler using the flat-combining DTLock extension
    /// (§8 future work, implemented): the owner serves *batches* of
    /// waiters in one pass instead of one `front`/`set_item`/`pop_front`
    /// round-trip each.
    DelegationFlat,
    /// Central lock-protected scheduler.
    Central(LockKind),
    /// Work-stealing comparator.
    WorkSteal(WsVariant),
}

/// Optional per-call trace recorder.
pub type Rec<'a> = Option<&'a mut CoreRecorder>;

/// The scheduler contract shared by every implementation.
pub trait Scheduler: Send + Sync {
    /// Add a ready task (any worker, any time).
    fn add_ready(&self, task: TaskPtr, worker: usize, rec: Rec<'_>);
    /// Add several ready tasks released by one completion, amortizing
    /// lock acquisitions, buffer operations and trace records across the
    /// whole batch. The default forwards to [`Scheduler::add_ready`] one
    /// task at a time; the real implementations override it.
    fn add_ready_batch(&self, tasks: &[TaskPtr], worker: usize, mut rec: Rec<'_>) {
        for &t in tasks {
            self.add_ready(t, worker, rec.as_deref_mut());
        }
    }
    /// Add several ready tasks *targeted at NUMA node `node`* instead of
    /// the producing worker's home node — the NUMA-aware replay
    /// partitioning release path: the frozen replay graph knows where
    /// each released task will run, so its batch goes straight into that
    /// node's ready structure. `worker` is still the *producing* worker
    /// (trace attribution, deque fallback). The default ignores the
    /// target and falls back to [`Scheduler::add_ready_batch`];
    /// implementations with per-node structures override it.
    ///
    /// Ordering contract: node-targeted tasks are served FIFO per node,
    /// *ahead of* the globally-ordered queue, so — like the zero-queue
    /// fast path — this trades strict global policy ordering (including
    /// [`Policy::Priority`] order) for placement. Callers opt in via
    /// `RuntimeConfig::replay_partitioning`.
    fn add_ready_batch_to(&self, node: usize, tasks: &[TaskPtr], worker: usize, rec: Rec<'_>) {
        let _ = node;
        self.add_ready_batch(tasks, worker, rec);
    }
    /// Ask for a task for `worker`; `None` means no work available now.
    fn get_ready(&self, worker: usize, rec: Rec<'_>) -> Option<TaskPtr>;
    /// Approximate number of queued tasks (diagnostics only).
    fn approx_len(&self) -> usize;
    /// Which configuration this is.
    fn kind(&self) -> SchedKind;
    /// Operation counters (see [`SchedOpStats`]); implementations that
    /// don't track them return zeros.
    fn op_stats(&self) -> SchedOpStats {
        SchedOpStats::default()
    }
    /// Per-NUMA-node insertion counters (see [`NodeOpStats`]), one entry
    /// per node; empty for schedulers without per-node structures.
    fn node_stats(&self) -> Vec<NodeOpStats> {
        Vec::new()
    }
}

/// Build a scheduler.
///
/// `workers` is the worker-thread count, `numa_nodes` partitions the
/// delegation scheduler's SPSC add-buffers, `spsc_capacity` bounds each
/// buffer (Listing 5 uses 100), and `pop_cache` enables the delegation
/// scheduler's per-worker pop cache (0 = disabled; part of the
/// zero-queue fast path, see [`crate::RuntimeConfig::fast_path`]).
/// `registry` binds the scheduler's operation counters to a shared
/// metrics registry (the runtime passes its own, so scheduler activity
/// shows up live in snapshots and the Prometheus export); `None` keeps
/// them on a private detached registry.
pub fn make_scheduler(
    kind: SchedKind,
    workers: usize,
    numa_nodes: usize,
    policy: Policy,
    spsc_capacity: usize,
    pop_cache: usize,
    registry: Option<&Registry>,
) -> Arc<dyn Scheduler> {
    use nanotask_locks::{McsLock, PtLock, SpinLock, TicketLock, TwaLock};
    match kind {
        SchedKind::Delegation => Arc::new(
            sync_sched::SyncScheduler::new(workers, numa_nodes, policy, spsc_capacity)
                .with_pop_cache(pop_cache)
                .with_registry(registry),
        ),
        SchedKind::DelegationFlat => Arc::new(
            sync_sched::SyncScheduler::new_flat(workers, numa_nodes, policy, spsc_capacity)
                .with_pop_cache(pop_cache)
                .with_registry(registry),
        ),
        SchedKind::Central(LockKind::PtLock) => Arc::new(
            central::CentralScheduler::<PtLock<64>>::new(policy, kind).with_registry(registry),
        ),
        SchedKind::Central(LockKind::Ticket) => Arc::new(
            central::CentralScheduler::<TicketLock>::new(policy, kind).with_registry(registry),
        ),
        SchedKind::Central(LockKind::Mcs) => Arc::new(
            central::CentralScheduler::<McsLock>::new(policy, kind).with_registry(registry),
        ),
        SchedKind::Central(LockKind::Twa) => Arc::new(
            central::CentralScheduler::<TwaLock>::new(policy, kind).with_registry(registry),
        ),
        SchedKind::Central(LockKind::Spin) => Arc::new(
            central::CentralScheduler::<SpinLock>::new(policy, kind).with_registry(registry),
        ),
        SchedKind::WorkSteal(v) => Arc::new(
            worksteal::WorkStealScheduler::new(workers, numa_nodes, v).with_registry(registry),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(n: usize) -> TaskPtr {
        TaskPtr(n as *mut Task)
    }

    #[test]
    fn policy_fifo() {
        let mut q = PolicyQueue::new(Policy::Fifo);
        q.push(fake(1));
        q.push(fake(2));
        assert_eq!(q.pop(), Some(fake(1)));
        assert_eq!(q.pop(), Some(fake(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn policy_lifo() {
        let mut q = PolicyQueue::new(Policy::Lifo);
        q.push(fake(1));
        q.push(fake(2));
        assert_eq!(q.pop(), Some(fake(2)));
        assert_eq!(q.pop(), Some(fake(1)));
    }

    /// The seq-order-among-equals contract of [`PrioEntry`]: the
    /// priority policy pops strictly by priority, and *insertion order*
    /// among equal priorities — which is what makes Priority-policy
    /// execution deterministic when the replay engine feeds ready tasks
    /// in creation order.
    #[test]
    fn priority_ties_pop_in_insertion_order() {
        let mut q = PolicyQueue::new(Policy::Priority);
        // Real task objects: the priority policy reads `task.priority`.
        let prios = [5, 1, 5, 3, 5, 3, 1];
        let tasks: Vec<*mut Task> = prios
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut t = Task::new(
                    i as u64,
                    "t",
                    core::ptr::null_mut(),
                    0,
                    Box::new(|_| {}),
                    vec![],
                );
                t.priority = p;
                Box::into_raw(Box::new(t))
            })
            .collect();
        for &t in &tasks {
            q.push(TaskPtr(t));
        }
        let mut got = Vec::new();
        while let Some(t) = q.pop() {
            got.push(unsafe { ((*t.0).priority, (*t.0).id) });
        }
        // Priority-descending; ids ascending (insertion order) per tier.
        assert_eq!(
            got,
            vec![(5, 0), (5, 2), (5, 4), (3, 3), (3, 5), (1, 1), (1, 6)],
            "FIFO among equal priorities"
        );
        for t in tasks {
            unsafe { drop(Box::from_raw(t)) };
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q = PolicyQueue::new(Policy::Fifo);
        assert!(q.is_empty());
        q.push(fake(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in [
            SchedKind::Delegation,
            SchedKind::DelegationFlat,
            SchedKind::Central(LockKind::PtLock),
            SchedKind::Central(LockKind::Ticket),
            SchedKind::Central(LockKind::Mcs),
            SchedKind::Central(LockKind::Twa),
            SchedKind::Central(LockKind::Spin),
            SchedKind::WorkSteal(WsVariant::LifoLocal),
            SchedKind::WorkSteal(WsVariant::FifoLocal),
        ] {
            let s = make_scheduler(kind, 4, 2, Policy::Fifo, 64, 0, None);
            assert_eq!(s.kind(), kind);
            assert_eq!(s.approx_len(), 0);
        }
    }

    #[test]
    fn factory_roundtrip_tasks() {
        for kind in [
            SchedKind::Delegation,
            SchedKind::DelegationFlat,
            SchedKind::Central(LockKind::PtLock),
            SchedKind::WorkSteal(WsVariant::LifoLocal),
        ] {
            let s = make_scheduler(kind, 2, 1, Policy::Fifo, 8, 0, None);
            s.add_ready(fake(0x1000), 0, None);
            s.add_ready(fake(0x2000), 1, None);
            let mut got = vec![];
            while let Some(t) = s.get_ready(0, None) {
                got.push(t.0 as usize);
            }
            while let Some(t) = s.get_ready(1, None) {
                got.push(t.0 as usize);
            }
            got.sort();
            assert_eq!(got, vec![0x1000, 0x2000], "kind {kind:?}");
        }
    }
}
