//! Central lock-protected scheduler.
//!
//! "Using a global lock is the most straightforward approach to
//! synchronize the scheduler. [...] When task granularity is coarse
//! enough, this approach works well and keeps the scheduling system's
//! design simple and the scheduling policies accurate." (§3)
//!
//! Instantiated with the [`nanotask_locks::PtLock`] this is exactly the
//! paper's "w/o DTLock" ablation (every `addReadyTask` and every
//! `getReadyTask` fights for the same lock — the behaviour Figure 10's
//! lower trace visualizes); the generic parameter also allows the
//! Ticket/MCS/TWA lock studies of §3.2 at the scheduler level.

use core::cell::UnsafeCell;
use nanotask_locks::RawLock;
use nanotask_obs::Registry;
use nanotask_trace::EventKind;

use super::{Policy, PolicyQueue, Rec, SchedCounters, SchedKind, SchedOpStats, Scheduler, TaskPtr};

/// A policy queue behind one global lock `L`.
pub struct CentralScheduler<L: RawLock> {
    lock: L,
    queue: UnsafeCell<PolicyQueue>,
    kind: SchedKind,
    counters: SchedCounters,
    len: core::sync::atomic::AtomicUsize,
}

unsafe impl<L: RawLock> Send for CentralScheduler<L> {}
unsafe impl<L: RawLock> Sync for CentralScheduler<L> {}

impl<L: RawLock> CentralScheduler<L> {
    /// Counter shards when built standalone: the constructor does not
    /// know the worker count, and out-of-range worker ids clamp to the
    /// last shard anyway, so a fixed width only affects contention.
    const DETACHED_SHARDS: usize = 16;

    /// Create an empty scheduler.
    pub fn new(policy: Policy, kind: SchedKind) -> Self {
        Self {
            lock: L::default(),
            queue: UnsafeCell::new(PolicyQueue::new(policy)),
            kind,
            counters: SchedCounters::detached(Self::DETACHED_SHARDS, 0),
            len: core::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Bind the operation counters to a shared metrics registry
    /// (`None` keeps the private detached counters).
    pub fn with_registry(mut self, reg: Option<&Registry>) -> Self {
        if let Some(reg) = reg {
            self.counters = SchedCounters::new(reg, 0);
        }
        self
    }
}

impl<L: RawLock> Scheduler for CentralScheduler<L> {
    fn add_ready(&self, task: TaskPtr, worker: usize, rec: Rec<'_>) {
        self.counters.add(worker);
        self.lock.lock();
        self.counters.lock(worker);
        // SAFETY: queue accessed only under `lock`.
        unsafe { (*self.queue.get()).push(task) };
        self.lock.unlock();
        self.len.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        if let Some(r) = rec {
            r.record(EventKind::AddReady, unsafe { (*task.0).id });
        }
    }

    fn add_ready_batch(&self, tasks: &[TaskPtr], worker: usize, rec: Rec<'_>) {
        match tasks {
            [] => return,
            [t] => return self.add_ready(*t, worker, rec),
            _ => {}
        }
        self.counters.batch(worker, tasks.len());
        // One lock acquisition covers the whole released batch — the
        // amortization the "w/o DTLock" ablation gets from batching.
        self.lock.lock();
        self.counters.lock(worker);
        // SAFETY: queue accessed only under `lock`.
        let q = unsafe { &mut *self.queue.get() };
        for &t in tasks {
            q.push(t);
        }
        self.lock.unlock();
        self.len
            .fetch_add(tasks.len(), core::sync::atomic::Ordering::Relaxed);
        if let Some(r) = rec {
            r.record(EventKind::ReadyBatch, tasks.len() as u64);
        }
    }

    fn add_ready_batch_to(&self, node: usize, tasks: &[TaskPtr], worker: usize, rec: Rec<'_>) {
        if tasks.is_empty() {
            return;
        }
        // One queue, no per-node structure: the node target is advisory.
        // The batch still amortizes the lock, and the targeted counters
        // keep the replay partitioner's routing observable.
        self.counters.targeted(worker, tasks.len());
        self.lock.lock();
        self.counters.lock(worker);
        // SAFETY: queue accessed only under `lock`.
        let q = unsafe { &mut *self.queue.get() };
        for &t in tasks {
            q.push(t);
        }
        self.lock.unlock();
        self.len
            .fetch_add(tasks.len(), core::sync::atomic::Ordering::Relaxed);
        if let Some(r) = rec {
            r.record(
                EventKind::NodeReadyBatch,
                ((node as u64) << 32) | tasks.len() as u64,
            );
        }
    }

    fn get_ready(&self, worker: usize, _rec: Rec<'_>) -> Option<TaskPtr> {
        self.lock.lock();
        self.counters.lock(worker);
        // SAFETY: queue accessed only under `lock`.
        let t = unsafe { (*self.queue.get()).pop() };
        self.lock.unlock();
        if t.is_some() {
            self.len.fetch_sub(1, core::sync::atomic::Ordering::Relaxed);
            self.counters.pop(worker);
        }
        t
    }

    fn approx_len(&self) -> usize {
        self.len.load(core::sync::atomic::Ordering::Relaxed)
    }

    fn kind(&self) -> SchedKind {
        self.kind
    }

    fn op_stats(&self) -> SchedOpStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::super::LockKind;
    use super::*;
    use crate::task::Task;
    use nanotask_locks::PtLock;
    use std::sync::Arc;

    fn fake(n: usize) -> TaskPtr {
        TaskPtr(n as *mut Task)
    }

    #[test]
    fn fifo_roundtrip() {
        let s =
            CentralScheduler::<PtLock<16>>::new(Policy::Fifo, SchedKind::Central(LockKind::PtLock));
        s.add_ready(fake(1), 0, None);
        s.add_ready(fake(2), 0, None);
        assert_eq!(s.approx_len(), 2);
        assert_eq!(s.get_ready(0, None), Some(fake(1)));
        assert_eq!(s.get_ready(1, None), Some(fake(2)));
        assert_eq!(s.get_ready(1, None), None);
        assert_eq!(s.approx_len(), 0);
    }

    #[test]
    fn batch_add_amortizes_lock() {
        let s =
            CentralScheduler::<PtLock<16>>::new(Policy::Fifo, SchedKind::Central(LockKind::PtLock));
        let batch: Vec<TaskPtr> = (1..=6).map(fake).collect();
        s.add_ready_batch(&batch, 0, None);
        let after_add = s.op_stats();
        assert_eq!(after_add.batch_adds, 1);
        assert_eq!(after_add.batch_tasks, 6);
        assert_eq!(after_add.lock_acquisitions, 1, "one lock for the batch");
        let mut got = vec![];
        while let Some(t) = s.get_ready(0, None) {
            got.push(t.0 as usize);
        }
        assert_eq!(got, (1..=6).collect::<Vec<_>>());
    }

    #[test]
    fn targeted_batch_is_accepted_and_counted() {
        let s =
            CentralScheduler::<PtLock<16>>::new(Policy::Fifo, SchedKind::Central(LockKind::PtLock));
        let batch: Vec<TaskPtr> = (1..=4).map(fake).collect();
        s.add_ready_batch_to(1, &batch, 0, None);
        let ops = s.op_stats();
        assert_eq!(ops.targeted_batch_adds, 1);
        assert_eq!(ops.targeted_tasks, 4);
        assert_eq!(ops.batch_adds, 0, "targeted adds counted separately");
        let mut got = vec![];
        while let Some(t) = s.get_ready(0, None) {
            got.push(t.0 as usize);
        }
        assert_eq!(got, (1..=4).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let s = Arc::new(CentralScheduler::<PtLock<64>>::new(
            Policy::Fifo,
            SchedKind::Central(LockKind::PtLock),
        ));
        const PER: usize = 5_000;
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        s.add_ready(fake(p * PER + i + 1), p, None);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|c| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < PER {
                        if let Some(t) = s.get_ready(c, None) {
                            got.push(t.0 as usize);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 2 * PER, "every task delivered exactly once");
    }
}
