//! Dependency-graph recording — regenerates Figure 1 of the paper.
//!
//! Figure 1 shows the access tree a simple OmpSs-2 program builds: four
//! sibling `in(A)` tasks plus nested children, connected by *successor*
//! and *child* links. When [`crate::RuntimeConfig::record_graph`] is
//! enabled, both dependency systems report every link they create and the
//! runtime stores them here for rendering.

use crate::task::TaskId;

/// Kind of dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Next access to the address among sibling tasks.
    Successor,
    /// First access to the address among child tasks.
    Child,
}

impl EdgeKind {
    /// Decode the `DepHooks::edge` byte.
    pub fn from_u8(k: u8) -> EdgeKind {
        if k == 0 {
            EdgeKind::Successor
        } else {
            EdgeKind::Child
        }
    }
}

/// One recorded dependency edge. Labels are the tasks' `&'static str`
/// labels — recording an edge allocates nothing beyond the `Vec` slot.
#[derive(Debug, Clone, Copy)]
pub struct GraphEdge {
    /// Source task.
    pub from: TaskId,
    /// Source task label.
    pub from_label: &'static str,
    /// Destination task.
    pub to: TaskId,
    /// Destination task label.
    pub to_label: &'static str,
    /// Address the edge is about.
    pub addr: usize,
    /// Successor or child.
    pub kind: EdgeKind,
}

/// Render edges in Graphviz DOT format.
pub fn to_dot(edges: &[GraphEdge]) -> String {
    let mut s = String::from("digraph deps {\n  rankdir=TB;\n");
    let mut nodes: Vec<(TaskId, &str)> = Vec::new();
    for e in edges {
        for (id, label) in [(e.from, e.from_label), (e.to, e.to_label)] {
            if !nodes.iter().any(|&(n, _)| n == id) {
                nodes.push((id, label));
            }
        }
    }
    for (id, label) in &nodes {
        s.push_str(&format!("  t{id} [label=\"{label}#{id}\"];\n"));
    }
    for e in edges {
        let style = match e.kind {
            EdgeKind::Successor => "solid",
            EdgeKind::Child => "dashed",
        };
        s.push_str(&format!(
            "  t{} -> t{} [style={style}, label=\"{:#x}\"];\n",
            e.from, e.to, e.addr
        ));
    }
    s.push_str("}\n");
    s
}

/// Render edges as the indented text tree of Figure 1 (successor chains
/// vertically, child links indented).
pub fn to_text(edges: &[GraphEdge]) -> String {
    let mut s = String::new();
    for e in edges {
        let arrow = match e.kind {
            EdgeKind::Successor => "── successor ──▶",
            EdgeKind::Child => "└─ child ──▶",
        };
        s.push_str(&format!(
            "{}#{} {} {}#{}  (addr {:#x})\n",
            e.from_label, e.from, arrow, e.to_label, e.to, e.addr
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<GraphEdge> {
        vec![
            GraphEdge {
                from: 1,
                from_label: "a",
                to: 2,
                to_label: "b",
                addr: 0x10,
                kind: EdgeKind::Successor,
            },
            GraphEdge {
                from: 1,
                from_label: "a",
                to: 3,
                to_label: "c",
                addr: 0x10,
                kind: EdgeKind::Child,
            },
        ]
    }

    #[test]
    fn edge_kind_decodes() {
        assert_eq!(EdgeKind::from_u8(0), EdgeKind::Successor);
        assert_eq!(EdgeKind::from_u8(1), EdgeKind::Child);
    }

    #[test]
    fn dot_output_well_formed() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("t1 -> t2 [style=solid"));
        assert!(dot.contains("t1 -> t3 [style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn text_output_mentions_links() {
        let text = to_text(&sample());
        assert!(text.contains("successor"));
        assert!(text.contains("child"));
        assert!(text.contains("a#1"));
    }
}
