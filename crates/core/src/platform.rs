//! Evaluation platform profiles (§6.1 of the paper).
//!
//! The paper evaluates on three machines. We encode them as *profiles*
//! (worker count + NUMA topology for the scheduler's SPSC partitioning)
//! and scale the worker count down to whatever the host offers — the
//! documented substitution: the reproduction targets the *shape* of the
//! curves, not absolute hardware numbers.

/// A machine profile: name, core count, NUMA-node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Platform {
    /// Display name used in benchmark output.
    pub name: &'static str,
    /// Worker threads the paper used on this machine.
    pub cores: usize,
    /// NUMA nodes (→ SPSC add-buffer partitioning, §3.1).
    pub numa_nodes: usize,
}

impl Platform {
    /// 2× Intel Xeon Platinum 8160 (Skylake), 48 cores, 2 sockets.
    pub const XEON: Platform = Platform {
        name: "intel-xeon-8160",
        cores: 48,
        numa_nodes: 2,
    };

    /// AWS Graviton2, 64 Neoverse N1 cores, single NUMA domain
    /// ("the lack of NUMA effects on this platform", §6.2).
    pub const GRAVITON2: Platform = Platform {
        name: "arm-graviton2",
        cores: 64,
        numa_nodes: 1,
    };

    /// 2× AMD EPYC 7H12 (Rome), 128 cores / 256 threads, 8 NUMA nodes.
    pub const ROME: Platform = Platform {
        name: "amd-rome-7h12",
        cores: 128,
        numa_nodes: 8,
    };

    /// All three paper platforms.
    pub const ALL: [Platform; 3] = [Platform::XEON, Platform::ROME, Platform::GRAVITON2];

    /// Scale the profile to at most `max_workers` workers, preserving the
    /// NUMA-node count (clamped to the worker count).
    pub fn scaled_to(&self, max_workers: usize) -> Platform {
        let cores = self.cores.min(max_workers).max(1);
        Platform {
            name: self.name,
            cores,
            numa_nodes: self.numa_nodes.min(cores),
        }
    }

    /// Host parallelism (hardware threads visible to this process).
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The profile scaled to the host, allowing a bounded amount of
    /// oversubscription (factor 4 by default is still responsive thanks
    /// to yielding spin loops).
    pub fn for_host(&self, oversubscribe: usize) -> Platform {
        self.scaled_to(Self::host_parallelism() * oversubscribe.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper() {
        assert_eq!(Platform::XEON.cores, 48);
        assert_eq!(Platform::ROME.cores, 128);
        assert_eq!(Platform::ROME.numa_nodes, 8);
        assert_eq!(Platform::GRAVITON2.numa_nodes, 1);
    }

    #[test]
    fn scaling_clamps_cores_and_numa() {
        let p = Platform::ROME.scaled_to(4);
        assert_eq!(p.cores, 4);
        assert_eq!(p.numa_nodes, 4);
        let p1 = Platform::ROME.scaled_to(1);
        assert_eq!(p1.cores, 1);
        assert_eq!(p1.numa_nodes, 1);
    }

    #[test]
    fn host_parallelism_positive() {
        assert!(Platform::host_parallelism() >= 1);
        let p = Platform::XEON.for_host(2);
        assert!(p.cores >= 1 && p.cores <= 48);
    }
}
