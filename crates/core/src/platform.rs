//! Evaluation platform profiles (§6.1 of the paper) and the concrete
//! [`Topology`] the runtime places its workers on.
//!
//! The paper evaluates on three machines. We encode them as *profiles*
//! (worker count + NUMA topology for the scheduler's SPSC partitioning)
//! and scale the worker count down to whatever the host offers — the
//! documented substitution: the reproduction targets the *shape* of the
//! curves, not absolute hardware numbers.
//!
//! A [`Platform`] is a *description*; a [`Topology`] is the realized
//! worker→NUMA-node placement a [`crate::Runtime`] owns: every layer
//! that needs placement (the schedulers' per-node add buffers, the
//! replay engine's graph partitioner, benchmark harnesses) reads the one
//! map instead of re-deriving its own.

/// A machine profile: name, core count, NUMA-node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Platform {
    /// Display name used in benchmark output.
    pub name: &'static str,
    /// Worker threads the paper used on this machine.
    pub cores: usize,
    /// NUMA nodes (→ SPSC add-buffer partitioning, §3.1).
    pub numa_nodes: usize,
}

impl Platform {
    /// 2× Intel Xeon Platinum 8160 (Skylake), 48 cores, 2 sockets.
    pub const XEON: Platform = Platform {
        name: "intel-xeon-8160",
        cores: 48,
        numa_nodes: 2,
    };

    /// AWS Graviton2, 64 Neoverse N1 cores, single NUMA domain
    /// ("the lack of NUMA effects on this platform", §6.2).
    pub const GRAVITON2: Platform = Platform {
        name: "arm-graviton2",
        cores: 64,
        numa_nodes: 1,
    };

    /// 2× AMD EPYC 7H12 (Rome), 128 cores / 256 threads, 8 NUMA nodes.
    pub const ROME: Platform = Platform {
        name: "amd-rome-7h12",
        cores: 128,
        numa_nodes: 8,
    };

    /// All three paper platforms.
    pub const ALL: [Platform; 3] = [Platform::XEON, Platform::ROME, Platform::GRAVITON2];

    /// Scale the profile to at most `max_workers` workers, preserving the
    /// NUMA-node count (clamped to the worker count).
    pub fn scaled_to(&self, max_workers: usize) -> Platform {
        let cores = self.cores.min(max_workers).max(1);
        Platform {
            name: self.name,
            cores,
            numa_nodes: self.numa_nodes.min(cores),
        }
    }

    /// Host parallelism (hardware threads visible to this process).
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The profile scaled to the host, allowing a bounded amount of
    /// oversubscription (factor 4 by default is still responsive thanks
    /// to yielding spin loops).
    pub fn for_host(&self, oversubscribe: usize) -> Platform {
        self.scaled_to(Self::host_parallelism() * oversubscribe.max(1))
    }
}

/// The realized worker→NUMA-node placement of one runtime instance.
///
/// Workers are assigned to nodes in contiguous blocks (worker `w` of `W`
/// on node `w·N/W` of `N`), which is both what `numactl --cpunodebind`
/// style pinning produces and what the delegation scheduler's per-node
/// SPSC partitioning has always assumed. The map is stored explicitly so
/// future non-contiguous placements only have to change the
/// constructors, not the consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `node_of[w]` = NUMA node of worker `w`. Non-decreasing.
    node_of: Vec<usize>,
    /// Number of NUMA nodes (≥ 1, ≤ workers).
    nodes: usize,
}

impl Topology {
    /// Contiguous block placement of `workers` workers over `nodes` NUMA
    /// nodes (`nodes` is clamped to `1..=workers`).
    pub fn contiguous(workers: usize, nodes: usize) -> Self {
        let workers = workers.max(1);
        let nodes = nodes.clamp(1, workers);
        Self {
            node_of: (0..workers).map(|w| w * nodes / workers).collect(),
            nodes,
        }
    }

    /// Detect a topology for `workers` workers from the environment:
    /// `NANOTASK_NUMA_NODES` wins when set; otherwise one node per 32
    /// hardware threads of the host — a deterministic stand-in for real
    /// NUMA discovery (this build has no libnuma), matching the paper's
    /// machines (48-core/2-node Xeon, 128-core/8-node Rome ≈ 1 node per
    /// 16–32 cores; small hosts get 1 node).
    pub fn detect(workers: usize) -> Self {
        let nodes = std::env::var("NANOTASK_NUMA_NODES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| Self::host_parallelism().div_ceil(32));
        Self::contiguous(workers, nodes)
    }

    /// Number of NUMA nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of workers placed.
    pub fn workers(&self) -> usize {
        self.node_of.len()
    }

    /// NUMA node of `worker` (out-of-range workers wrap, so helper
    /// threads beyond the placed set still get a valid node).
    pub fn node_of(&self, worker: usize) -> usize {
        self.node_of[worker % self.node_of.len()]
    }

    /// The workers placed on `node`, in id order.
    pub fn workers_of(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.node_of
            .iter()
            .enumerate()
            .filter(move |&(_, &n)| n == node)
            .map(|(w, _)| w)
    }

    /// The lowest-id worker on `node` (falls back to worker 0 for an
    /// empty or out-of-range node).
    pub fn first_worker_of(&self, node: usize) -> usize {
        self.workers_of(node).next().unwrap_or(0)
    }

    /// Host parallelism (same source as [`Platform::host_parallelism`]).
    fn host_parallelism() -> usize {
        Platform::host_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper() {
        assert_eq!(Platform::XEON.cores, 48);
        assert_eq!(Platform::ROME.cores, 128);
        assert_eq!(Platform::ROME.numa_nodes, 8);
        assert_eq!(Platform::GRAVITON2.numa_nodes, 1);
    }

    #[test]
    fn scaling_clamps_cores_and_numa() {
        let p = Platform::ROME.scaled_to(4);
        assert_eq!(p.cores, 4);
        assert_eq!(p.numa_nodes, 4);
        let p1 = Platform::ROME.scaled_to(1);
        assert_eq!(p1.cores, 1);
        assert_eq!(p1.numa_nodes, 1);
    }

    #[test]
    fn host_parallelism_positive() {
        assert!(Platform::host_parallelism() >= 1);
        let p = Platform::XEON.for_host(2);
        assert!(p.cores >= 1 && p.cores <= 48);
    }

    #[test]
    fn topology_contiguous_blocks() {
        let t = Topology::contiguous(8, 2);
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.workers(), 8);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(7), 1);
        assert_eq!(t.workers_of(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(t.workers_of(1).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(t.first_worker_of(1), 4);
    }

    #[test]
    fn topology_uneven_split_covers_every_worker() {
        // 7 workers over 3 nodes: every worker has a node, every node has
        // at least one worker, blocks are contiguous.
        let t = Topology::contiguous(7, 3);
        let mut per_node = vec![0usize; t.nodes()];
        let mut prev = 0;
        for w in 0..t.workers() {
            let n = t.node_of(w);
            assert!(n >= prev, "placement is non-decreasing");
            prev = n;
            per_node[n] += 1;
        }
        assert!(per_node.iter().all(|&c| c >= 1), "{per_node:?}");
        assert_eq!(per_node.iter().sum::<usize>(), 7);
    }

    #[test]
    fn topology_clamps_nodes_to_workers() {
        let t = Topology::contiguous(2, 8);
        assert_eq!(t.nodes(), 2);
        let t1 = Topology::contiguous(4, 0);
        assert_eq!(t1.nodes(), 1);
        assert_eq!(t1.node_of(3), 0);
    }

    #[test]
    fn topology_out_of_range_worker_wraps() {
        let t = Topology::contiguous(4, 2);
        assert_eq!(t.node_of(4), t.node_of(0));
    }

    #[test]
    fn topology_detect_is_deterministic() {
        // Whatever the host offers, detection must be stable and valid.
        let a = Topology::detect(4);
        let b = Topology::detect(4);
        assert_eq!(a, b);
        assert!(a.nodes() >= 1 && a.nodes() <= 4);
    }
}
