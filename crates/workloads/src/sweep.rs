//! Granularity sweep driver and the paper's *efficiency* metric.
//!
//! §6.2: "we use a metric we will refer to as efficiency. It is
//! calculated by dividing the performance of a specific run of a
//! benchmark by the peak performance obtained across all executions.
//! [...] Combining this metric with varying task granularity gives a good
//! view of each runtime version's scalability. The granularity is
//! expressed in instructions executed per task."

use std::time::Instant;

use nanotask_core::Runtime;

use crate::{IterativeWorkload, Workload};

/// One measured point of a granularity sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Block size used.
    pub block_size: usize,
    /// Paper x-axis: operations per task (≈ instructions per task).
    pub ops_per_task: u64,
    /// Total abstract operations of the run.
    pub work: u64,
    /// Best wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Performance = work / seconds (abstract ops per second).
    pub perf: f64,
}

/// Sweep a workload over all of its block sizes on one runtime
/// configuration, repeating each point `reps` times and keeping the best
/// (the paper runs each benchmark "a minimum of five times").
pub fn sweep(w: &mut dyn Workload, rt: &Runtime, reps: usize) -> Vec<SweepPoint> {
    let reps = reps.max(1);
    let mut points = Vec::new();
    for bs in w.block_sizes() {
        let mut best = f64::INFINITY;
        let mut work = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            work = w.run(rt, bs);
            let dt = t0.elapsed().as_secs_f64();
            if dt < best {
                best = dt;
            }
        }
        let perf = if best > 0.0 { work as f64 / best } else { 0.0 };
        points.push(SweepPoint {
            block_size: bs,
            ops_per_task: w.ops_per_task(bs),
            work,
            seconds: best,
            perf,
        });
    }
    points
}

/// How the sweep drives a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// The normal driver: every iteration through the dependency system.
    #[default]
    Normal,
    /// The record & replay driver (`Runtime::run_iterative`).
    Replay,
}

/// Like [`sweep`], but selecting between the normal and the
/// record & replay driver of an [`IterativeWorkload`].
pub fn sweep_mode(
    w: &mut dyn IterativeWorkload,
    rt: &Runtime,
    reps: usize,
    mode: RunMode,
) -> Vec<SweepPoint> {
    let reps = reps.max(1);
    let mut points = Vec::new();
    for bs in w.block_sizes() {
        let mut best = f64::INFINITY;
        let mut work = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            work = match mode {
                RunMode::Normal => w.run(rt, bs),
                RunMode::Replay => w.run_replay(rt, bs),
            };
            let dt = t0.elapsed().as_secs_f64();
            if dt < best {
                best = dt;
            }
        }
        let perf = if best > 0.0 { work as f64 / best } else { 0.0 };
        points.push(SweepPoint {
            block_size: bs,
            ops_per_task: w.ops_per_task(bs),
            work,
            seconds: best,
            perf,
        });
    }
    points
}

/// Normalize performances to the peak across *all* provided series —
/// the efficiency metric of §6.2 (0..100, higher is better).
pub fn efficiency(series: &[Vec<SweepPoint>]) -> Vec<Vec<f64>> {
    let peak = series
        .iter()
        .flat_map(|s| s.iter().map(|p| p.perf))
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    series
        .iter()
        .map(|s| s.iter().map(|p| 100.0 * p.perf / peak).collect())
        .collect()
}

/// Format a sweep as CSV rows: `benchmark,variant,granularity,block,perf`.
pub fn to_csv(benchmark: &str, variant: &str, points: &[SweepPoint], eff: &[f64]) -> String {
    let mut out = String::new();
    for (p, e) in points.iter().zip(eff) {
        out.push_str(&format!(
            "{benchmark},{variant},{},{},{:.3},{:.1}\n",
            p.ops_per_task, p.block_size, p.perf, e
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dotprod::DotProduct;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn sweep_produces_one_point_per_block_size() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let mut w = DotProduct::new(1);
        let sizes = w.block_sizes().len();
        let pts = sweep(&mut w, &rt, 1);
        assert_eq!(pts.len(), sizes);
        for p in &pts {
            assert!(p.perf > 0.0);
            assert!(p.seconds > 0.0);
        }
    }

    #[test]
    fn efficiency_peaks_at_100() {
        let series = vec![
            vec![
                SweepPoint {
                    block_size: 1,
                    ops_per_task: 10,
                    work: 100,
                    seconds: 1.0,
                    perf: 100.0,
                },
                SweepPoint {
                    block_size: 2,
                    ops_per_task: 20,
                    work: 100,
                    seconds: 0.5,
                    perf: 200.0,
                },
            ],
            vec![SweepPoint {
                block_size: 1,
                ops_per_task: 10,
                work: 100,
                seconds: 2.0,
                perf: 50.0,
            }],
        ];
        let eff = efficiency(&series);
        assert_eq!(eff[0][1], 100.0);
        assert_eq!(eff[0][0], 50.0);
        assert_eq!(eff[1][0], 25.0);
    }

    #[test]
    fn csv_has_expected_columns() {
        let pts = vec![SweepPoint {
            block_size: 4,
            ops_per_task: 8,
            work: 100,
            seconds: 1.0,
            perf: 100.0,
        }];
        let csv = to_csv("Dot", "optimized", &pts, &[100.0]);
        assert_eq!(csv.trim(), "Dot,optimized,8,4,100.000,100.0");
    }
}
