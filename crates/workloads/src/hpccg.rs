//! HPCCG — §6.1 benchmark (3): "a taskified HPCCG with several kernels
//! using task reductions and multi-dependencies".
//!
//! A conjugate-gradient solve on the banded sparse matrix HPCCG uses
//! (27-point-stencil structure). Each iteration is a pipeline of blocked
//! kernels wired purely through data dependencies — no barriers:
//!
//! * `spmv`: `q[b] = A·p` — *multi-dependency* on the neighbouring `p`
//!   blocks the band reaches;
//! * dot products `p·q` and `r·r` as task reductions;
//! * scalar tasks computing α and β (reads on the reduced scalars);
//! * `axpy` updates of `x`, `r` and `p`.

use nanotask_core::{Deps, RedOp, Runtime, SendPtr, TaskCtx};
use nanotask_replay::RunIterative;

use crate::kernels::{hash_f64, spmv_banded};
use crate::{IterativeWorkload, Workload};

/// Taskified CG on a banded SPD system.
pub struct Hpccg {
    n: usize,
    iters: usize,
    bands: Vec<usize>,
    diag: f64,
    b: Vec<f64>,
    x: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    q: Vec<f64>,
    scalars: Box<Scalars>,
    expected_x: Vec<f64>,
}

/// Reduction / scalar targets (kept together on the heap so addresses
/// are stable across `run` calls).
#[derive(Default)]
struct Scalars {
    rtrans: f64,
    pq: f64,
    alpha: f64,
    beta: f64,
    old_rtrans: f64,
}

impl Hpccg {
    /// `scale` multiplies the unknown count (scale 1 ≈ 4096 rows).
    pub fn new(scale: usize) -> Self {
        let n = 4096 * scale.clamp(1, 64);
        let iters = 4;
        // Banded SPD matrix: strong diagonal, unit off-diagonals at the
        // stencil bands (HPCCG's structure collapsed to 1-D index space).
        let bands = vec![1, 16, 17];
        let diag = 27.0;
        let b: Vec<f64> = (0..n).map(hash_f64).collect();
        let mut me = Self {
            n,
            iters,
            bands,
            diag,
            b,
            x: vec![0.0; n],
            r: vec![0.0; n],
            p: vec![0.0; n],
            q: vec![0.0; n],
            scalars: Box::new(Scalars::default()),
            expected_x: vec![],
        };
        me.expected_x = me.serial_reference();
        me
    }

    /// Change the CG iteration count (benchmarking knob).
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.iters = iters.max(1);
        self.expected_x = self.serial_reference();
        self
    }

    /// Serial CG with identical arithmetic, for verification.
    fn serial_reference(&self) -> Vec<f64> {
        let n = self.n;
        let mut x = vec![0.0; n];
        let mut r = self.b.clone();
        let mut p = r.clone();
        let mut q = vec![0.0; n];
        let mut rtrans: f64 = r.iter().map(|v| v * v).sum();
        for _ in 0..self.iters {
            spmv_banded(&mut q, &p, 0, n, n, &self.bands, self.diag);
            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let alpha = rtrans / pq;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            let old = rtrans;
            rtrans = r.iter().map(|v| v * v).sum();
            let beta = rtrans / old;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }
        x
    }
}

/// Pointer bundle for the CG task spawners (`Copy`, moved into task
/// closures wholesale).
#[derive(Clone, Copy)]
struct CgPtrs {
    x: SendPtr<f64>,
    r: SendPtr<f64>,
    p: SendPtr<f64>,
    q: SendPtr<f64>,
    rtrans: SendPtr<f64>,
    pq: SendPtr<f64>,
    alpha: SendPtr<f64>,
    beta: SendPtr<f64>,
    old_rt: SendPtr<f64>,
}

/// Block `bidx` of a vector.
fn blk(base: SendPtr<f64>, bidx: usize, bs: usize) -> SendPtr<f64> {
    unsafe { base.add(bidx * bs) }
}

/// Spawn the prologue reduction `rtrans = r·r`.
fn spawn_initial_rtrans(ctx: &TaskCtx, cg: CgPtrs, bs: usize, nb: usize) {
    for bi in 0..nb {
        let rb = blk(cg.r, bi, bs);
        let rtrans = cg.rtrans;
        ctx.spawn_labeled(
            "dot_rr",
            Deps::new()
                .read_addr(rb.addr())
                .reduce_addr(rtrans.addr(), 8, RedOp::SumF64),
            move |c| unsafe {
                let v = core::slice::from_raw_parts(rb.get(), bs);
                *c.red_slot(&*(rtrans.addr() as *const f64)) +=
                    v.iter().map(|a| a * a).sum::<f64>();
            },
        );
    }
}

/// Spawn one full CG iteration: spmv, dot reductions, α/β scalar tasks
/// and axpy updates, wired purely through data dependencies. Shared
/// between the pipelined driver ([`Workload::run`]) and the
/// record/replay driver ([`IterativeWorkload::run_replay`]).
fn spawn_cg_iteration(
    ctx: &TaskCtx,
    cg: CgPtrs,
    bands: &[usize],
    diag: f64,
    bs: usize,
    nb: usize,
    n: usize,
) {
    let CgPtrs {
        x,
        r,
        p,
        q,
        rtrans,
        pq,
        alpha,
        beta,
        old_rt,
    } = cg;
    // q = A·p: multi-dependency on the p blocks the bands touch.
    let max_band = *bands.iter().max().unwrap_or(&0);
    let reach = max_band.div_ceil(bs);
    for bi in 0..nb {
        let qb = blk(q, bi, bs);
        let mut deps = Deps::new().write_addr(qb.addr());
        let lo = bi.saturating_sub(reach);
        let hi = (bi + reach).min(nb - 1);
        for nbi in lo..=hi {
            deps = deps.read_addr(blk(p, nbi, bs).addr());
        }
        let bands = bands.to_vec();
        ctx.spawn_labeled("spmv", deps, move |_| unsafe {
            let pall = core::slice::from_raw_parts(p.get(), n);
            let qall = core::slice::from_raw_parts_mut(q.get(), n);
            spmv_banded(qall, pall, bi * bs, bs, n, &bands, diag);
        });
    }
    // pq = p·q (reduction).
    for bi in 0..nb {
        let (pb, qb) = (blk(p, bi, bs), blk(q, bi, bs));
        ctx.spawn_labeled(
            "dot_pq",
            Deps::new()
                .read_addr(pb.addr())
                .read_addr(qb.addr())
                .reduce_addr(pq.addr(), 8, RedOp::SumF64),
            move |c| unsafe {
                let pv = core::slice::from_raw_parts(pb.get(), bs);
                let qv = core::slice::from_raw_parts(qb.get(), bs);
                *c.red_slot(&*(pq.addr() as *const f64)) +=
                    pv.iter().zip(qv).map(|(a, b)| a * b).sum::<f64>();
            },
        );
    }
    // alpha = rtrans / pq; stash old rtrans; reset for re-reduce.
    ctx.spawn_labeled(
        "alpha",
        Deps::new()
            .readwrite_addr(rtrans.addr())
            .readwrite_addr(pq.addr())
            .write_addr(alpha.addr())
            .write_addr(old_rt.addr()),
        move |_| unsafe {
            *alpha.get() = *rtrans.get() / *pq.get();
            *old_rt.get() = *rtrans.get();
            *rtrans.get() = 0.0;
            *pq.get() = 0.0;
        },
    );
    // x += alpha p; r -= alpha q; then reduce new rtrans.
    for bi in 0..nb {
        let (xb, rb, pb, qb) = (
            blk(x, bi, bs),
            blk(r, bi, bs),
            blk(p, bi, bs),
            blk(q, bi, bs),
        );
        ctx.spawn_labeled(
            "axpy",
            Deps::new()
                .readwrite_addr(xb.addr())
                .readwrite_addr(rb.addr())
                .read_addr(pb.addr())
                .read_addr(qb.addr())
                .read_addr(alpha.addr()),
            move |_| unsafe {
                let a = *alpha.get();
                for k in 0..bs {
                    *xb.get().add(k) += a * *pb.get().add(k);
                    *rb.get().add(k) -= a * *qb.get().add(k);
                }
            },
        );
        ctx.spawn_labeled(
            "dot_rr",
            Deps::new()
                .read_addr(rb.addr())
                .reduce_addr(rtrans.addr(), 8, RedOp::SumF64),
            move |c| unsafe {
                let v = core::slice::from_raw_parts(rb.get(), bs);
                *c.red_slot(&*(rtrans.addr() as *const f64)) +=
                    v.iter().map(|a| a * a).sum::<f64>();
            },
        );
    }
    // beta = rtrans / old_rtrans.
    ctx.spawn_labeled(
        "beta",
        Deps::new()
            .read_addr(rtrans.addr())
            .read_addr(old_rt.addr())
            .write_addr(beta.addr()),
        move |_| unsafe {
            *beta.get() = *rtrans.get() / *old_rt.get();
        },
    );
    // p = r + beta p.
    for bi in 0..nb {
        let (pb, rb) = (blk(p, bi, bs), blk(r, bi, bs));
        ctx.spawn_labeled(
            "update_p",
            Deps::new()
                .readwrite_addr(pb.addr())
                .read_addr(rb.addr())
                .read_addr(beta.addr()),
            move |_| unsafe {
                let be = *beta.get();
                for k in 0..bs {
                    let pk = pb.get().add(k);
                    *pk = *rb.get().add(k) + be * *pk;
                }
            },
        );
    }
}

impl Hpccg {
    /// Reset vectors/scalars and build the pointer bundle for a run.
    fn prepare(&mut self) -> CgPtrs {
        self.x.iter_mut().for_each(|v| *v = 0.0);
        self.r.copy_from_slice(&self.b);
        self.p.copy_from_slice(&self.b);
        self.q.iter_mut().for_each(|v| *v = 0.0);
        *self.scalars = Scalars::default();
        let s = &mut *self.scalars;
        CgPtrs {
            x: SendPtr::new(self.x.as_mut_ptr()),
            r: SendPtr::new(self.r.as_mut_ptr()),
            p: SendPtr::new(self.p.as_mut_ptr()),
            q: SendPtr::new(self.q.as_mut_ptr()),
            rtrans: SendPtr::new(&mut s.rtrans as *mut f64),
            pq: SendPtr::new(&mut s.pq as *mut f64),
            alpha: SendPtr::new(&mut s.alpha as *mut f64),
            beta: SendPtr::new(&mut s.beta as *mut f64),
            old_rt: SendPtr::new(&mut s.old_rtrans as *mut f64),
        }
    }
}

impl Workload for Hpccg {
    fn name(&self) -> &'static str {
        "HPCCG"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 64;
        while bs <= self.n {
            v.push(bs);
            bs *= 4;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        let n = self.n;
        let nb = n / bs;
        let iters = self.iters;
        let bands = self.bands.clone();
        let diag = self.diag;
        let cg = self.prepare();
        rt.run(move |ctx| {
            spawn_initial_rtrans(ctx, cg, bs, nb);
            for _ in 0..iters {
                spawn_cg_iteration(ctx, cg, &bands, diag, bs, nb, n);
            }
        });
        // ~ (2*bands + misc) flops per row per iteration.
        (16 * self.n * self.iters) as u64
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        16 * bs as u64
    }

    fn verify(&self) -> Result<(), String> {
        for (i, (got, want)) in self.x.iter().zip(&self.expected_x).enumerate() {
            if (got - want).abs() > 1e-6 * want.abs().max(1e-9) {
                return Err(format!("x[{i}] = {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

impl IterativeWorkload for Hpccg {
    fn iterations(&self) -> usize {
        self.iters
    }

    fn set_iterations(&mut self, iters: usize) {
        self.iters = iters.max(1);
        self.expected_x = self.serial_reference();
    }

    fn run_replay(&mut self, rt: &Runtime, bs: usize) -> u64 {
        self.run_replay_report(rt, bs);
        (16 * self.n * self.iters) as u64
    }

    fn run_replay_report(&mut self, rt: &Runtime, bs: usize) -> nanotask_replay::ReplayReport {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        let n = self.n;
        let nb = n / bs;
        let bands = self.bands.clone();
        let diag = self.diag;
        let cg = self.prepare();
        // Prologue (initial rtrans) runs once, outside the iteration body,
        // so every recorded/replayed iteration has identical structure.
        rt.run(move |ctx| spawn_initial_rtrans(ctx, cg, bs, nb));
        rt.run_iterative(self.iters, move |ctx| {
            spawn_cg_iteration(ctx, cg, &bands, diag, bs, nb, n);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn replay_matches_serial_cg() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Hpccg::new(1);
        for bs in [64, 256, 1024] {
            w.run_replay(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("replay bs={bs}: {e}"));
        }
    }

    #[test]
    fn replay_with_more_iters_still_verifies() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Hpccg::new(1).with_iters(7);
        w.run_replay(&rt, 256);
        w.verify().unwrap();
    }

    #[test]
    fn matches_serial_cg() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Hpccg::new(1);
        for bs in [64, 256, 1024] {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn cg_reduces_residual() {
        let w = Hpccg::new(1);
        // After `iters` iterations the solution must be non-trivial.
        assert!(w.expected_x.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn correct_with_locking_deps() {
        let rt = Runtime::new(RuntimeConfig::without_waitfree_deps().workers(2));
        let mut w = Hpccg::new(1);
        w.run(&rt, 256);
        w.verify().unwrap();
    }
}
