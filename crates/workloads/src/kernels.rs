//! Compute kernels used inside task bodies.
//!
//! The paper sources its kernels "from the best available vendor library
//! for each machine" (Intel MKL / ARM Performance Libraries) purely so
//! that task *bodies* have realistic cost. These hand-written blocked
//! kernels play the same role: they define the operations-per-task scale
//! that the granularity axis of Figures 4–9 is measured in.

/// `c += a * b` for `n×n` row-major blocks (the gemm task of Matmul and
/// Cholesky).
pub fn gemm_block(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    debug_assert!(c.len() >= n * n && a.len() >= n * n && b.len() >= n * n);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            let (brow, crow) = (&b[k * n..k * n + n], &mut c[i * n..i * n + n]);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// `c -= a * bᵀ` — the Cholesky update flavour of gemm.
pub fn gemm_nt_sub_block(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * b[j * n + k];
            }
            c[i * n + j] -= s;
        }
    }
}

/// Unblocked Cholesky factorization of an `n×n` SPD block (potrf task).
/// Returns `Err` if the block is not positive definite.
pub fn potrf_block(a: &mut [f64], n: usize) -> Result<(), &'static str> {
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        if d <= 0.0 {
            return Err("matrix not positive definite");
        }
        let d = d.sqrt();
        a[j * n + j] = d;
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / d;
        }
        for i in 0..j {
            a[i * n + j] = 0.0; // keep strictly lower triangular + diagonal
        }
    }
    Ok(())
}

/// Triangular solve `x ← x · L⁻ᵀ` against the diagonal block (trsm task).
pub fn trsm_block(x: &mut [f64], l: &[f64], n: usize) {
    for i in 0..n {
        for j in 0..n {
            let mut s = x[i * n + j];
            for k in 0..j {
                s -= x[i * n + k] * l[j * n + k];
            }
            x[i * n + j] = s / l[j * n + j];
        }
    }
}

/// Symmetric rank-k update `c -= a · aᵀ` (syrk task; full block update).
pub fn syrk_block(c: &mut [f64], a: &[f64], n: usize) {
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * a[j * n + k];
            }
            c[i * n + j] -= s;
            if i != j {
                c[j * n + i] -= s;
            }
        }
    }
}

/// Partial dot product over a block.
pub fn dot_block(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for i in 0..a.len().min(b.len()) {
        s += a[i] * b[i];
    }
    s
}

/// One Gauss–Seidel sweep over an interior block of a 2-D grid stored
/// row-major with `stride`. Returns the squared residual contribution.
///
/// # Safety
/// `base` must point at the block's top-left interior cell of a grid
/// where rows of `stride` cells surround the block on all sides.
pub unsafe fn gauss_seidel_block(base: *mut f64, rows: usize, cols: usize, stride: usize) -> f64 {
    let mut residual = 0.0;
    unsafe {
        for r in 0..rows {
            let row = base.add(r * stride);
            for c in 0..cols {
                let p = row.add(c);
                let old = *p;
                let new = 0.25 * (*p.offset(-1) + *p.add(1) + *p.sub(stride) + *p.add(stride));
                *p = new;
                let d = new - old;
                residual += d * d;
            }
        }
    }
    residual
}

/// Sparse matrix-vector product for one row block of a 27-point-stencil
/// style banded matrix: `y = A·x` with `A = diag·I - offdiag` at `bands`.
pub fn spmv_banded(
    y: &mut [f64],
    x: &[f64],
    row0: usize,
    rows: usize,
    n: usize,
    bands: &[usize],
    diag: f64,
) {
    for i in row0..(row0 + rows).min(n) {
        let mut s = diag * x[i];
        for &b in bands {
            if i >= b {
                s -= x[i - b];
            }
            if i + b < n {
                s -= x[i + b];
            }
        }
        y[i] = s;
    }
}

/// Block pairwise gravity-style force accumulation (NBody task kernel).
/// Positions are `(x,y,z)` triples; forces accumulated into `f`.
pub fn nbody_block_forces(
    f: &mut [f64],
    pos_i: &[f64],
    pos_j: &[f64],
    ni: usize,
    nj: usize,
    softening: f64,
) {
    for i in 0..ni {
        let (xi, yi, zi) = (pos_i[3 * i], pos_i[3 * i + 1], pos_i[3 * i + 2]);
        let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
        for j in 0..nj {
            let dx = pos_j[3 * j] - xi;
            let dy = pos_j[3 * j + 1] - yi;
            let dz = pos_j[3 * j + 2] - zi;
            let r2 = dx * dx + dy * dy + dz * dz + softening;
            let inv = 1.0 / (r2 * r2.sqrt());
            fx += dx * inv;
            fy += dy * inv;
            fz += dz * inv;
        }
        f[3 * i] += fx;
        f[3 * i + 1] += fy;
        f[3 * i + 2] += fz;
    }
}

/// Deterministic pseudo-random f64 in (0, 1) from an index (fills test
/// matrices reproducibly without threading a RNG through the workloads).
pub fn hash_f64(i: usize) -> f64 {
    let mut x = i as u64 ^ 0x243F_6A88_85A3_08D3;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_identity() {
        let n = 4;
        let mut c = vec![0.0; n * n];
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0; // identity
        }
        let b: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        gemm_block(&mut c, &a, &b, n);
        assert_eq!(c, b);
    }

    #[test]
    fn potrf_recovers_known_factor() {
        // A = L·Lᵀ with L = [[2,0],[1,3]] → A = [[4,2],[2,10]].
        let n = 2;
        let mut a = vec![4.0, 2.0, 2.0, 10.0];
        potrf_block(&mut a, n).unwrap();
        assert!((a[0] - 2.0).abs() < 1e-12);
        assert!((a[2] - 1.0).abs() < 1e-12);
        assert!((a[3] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(potrf_block(&mut a, 2).is_err());
    }

    #[test]
    fn trsm_solves_against_lower_triangular() {
        // L = [[2,0],[1,3]]; for X·L⁻ᵀ = B: choose X = B·... verify by
        // reconstruction: (trsm(B))·Lᵀ == B.
        let n = 2;
        let l = vec![2.0, 0.0, 1.0, 3.0];
        let b = vec![4.0, 6.0, 8.0, 12.0];
        let mut x = b.clone();
        trsm_block(&mut x, &l, n);
        // reconstruct r = x · Lᵀ
        let mut r = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    // (Lᵀ)[k][j] = L[j][k]
                    r[i * n + j] += x[i * n + k] * l[j * n + k];
                }
            }
        }
        for (got, want) in r.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{r:?} vs {b:?}");
        }
    }

    #[test]
    fn syrk_matches_explicit() {
        let n = 3;
        let a: Vec<f64> = (0..n * n).map(|i| (i as f64) * 0.5 + 1.0).collect();
        let mut c = vec![0.0; n * n];
        syrk_block(&mut c, &a, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[i * n + k] * a[j * n + k];
                }
                assert!((c[i * n + j] + s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gemm_nt_sub_matches_explicit() {
        let n = 3;
        let a: Vec<f64> = (0..n * n).map(hash_f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| hash_f64(i + 100)).collect();
        let mut c = vec![1.0; n * n];
        gemm_nt_sub_block(&mut c, &a, &b, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[i * n + k] * b[j * n + k];
                }
                assert!((c[i * n + j] - (1.0 - s)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dot_block_simple() {
        assert_eq!(dot_block(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn gauss_seidel_reduces_residual_on_smooth_problem() {
        let n = 16;
        let mut grid = vec![0.0f64; n * n];
        // boundary = 1, interior = 0
        for i in 0..n {
            grid[i] = 1.0;
            grid[(n - 1) * n + i] = 1.0;
            grid[i * n] = 1.0;
            grid[i * n + n - 1] = 1.0;
        }
        let r1 = unsafe { gauss_seidel_block(grid.as_mut_ptr().add(n + 1), n - 2, n - 2, n) };
        let mut r2 = 0.0;
        for _ in 0..20 {
            r2 = unsafe { gauss_seidel_block(grid.as_mut_ptr().add(n + 1), n - 2, n - 2, n) };
        }
        assert!(r2 < r1, "residual decreases: {r1} -> {r2}");
    }

    #[test]
    fn spmv_banded_diagonal_only() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        spmv_banded(&mut y, &x, 0, 3, 3, &[], 27.0);
        assert_eq!(y, vec![27.0, 54.0, 81.0]);
    }

    #[test]
    fn spmv_banded_with_neighbours() {
        let x = vec![1.0; 5];
        let mut y = vec![0.0; 5];
        spmv_banded(&mut y, &x, 0, 5, 5, &[1], 4.0);
        assert_eq!(y, vec![3.0, 2.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn nbody_forces_are_antisymmetric_for_pair() {
        let pi = vec![0.0, 0.0, 0.0];
        let pj = vec![1.0, 0.0, 0.0];
        let mut fi = vec![0.0; 3];
        let mut fj = vec![0.0; 3];
        nbody_block_forces(&mut fi, &pi, &pj, 1, 1, 1e-9);
        nbody_block_forces(&mut fj, &pj, &pi, 1, 1, 1e-9);
        assert!((fi[0] + fj[0]).abs() < 1e-9);
        assert!(fi[0] > 0.0, "attraction towards +x");
    }

    #[test]
    fn hash_f64_in_unit_interval_and_deterministic() {
        for i in 0..1000 {
            let v = hash_f64(i);
            assert!(v > 0.0 && v < 1.0);
            assert_eq!(v, hash_f64(i));
        }
    }
}
