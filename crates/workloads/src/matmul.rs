//! Blocked matrix multiplication — §6.1 benchmark (6): "a classic
//! parallel blocked Matmul".
//!
//! Tiled layout (block-major storage) so each tile has one representative
//! address for the dependency system; the task graph is the classic
//! `inout(C[i][j]) in(A[i][k], B[k][j])` three-deep loop nest, giving
//! per-C-tile chains that expose both parallelism (across tiles) and
//! dependencies (along k).

use nanotask_core::{Deps, Runtime, SendPtr};

use crate::Workload;
use crate::kernels::{gemm_block, hash_f64};

/// Blocked `C = A·B` on tiled square matrices.
pub struct Matmul {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    expected: Vec<f64>,
    last_bs: usize,
}

impl Matmul {
    /// `scale` multiplies the matrix dimension (scale 1 ≈ 64×64).
    pub fn new(scale: usize) -> Self {
        let n = 64 * scale.clamp(1, 16);
        let a: Vec<f64> = (0..n * n).map(hash_f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| hash_f64(i + n * n)).collect();
        // Serial row-major reference.
        let mut expected = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    expected[i * n + j] += aik * b[k * n + j];
                }
            }
        }
        Self {
            n,
            a,
            b,
            c: vec![0.0; n * n],
            expected,
            last_bs: 0,
        }
    }

    /// Copy a row-major matrix into block-major tiles of size `bs`.
    fn tile(src: &[f64], n: usize, bs: usize) -> Vec<f64> {
        let nb = n / bs;
        let mut out = vec![0.0; n * n];
        for bi in 0..nb {
            for bj in 0..nb {
                let base = (bi * nb + bj) * bs * bs;
                for r in 0..bs {
                    for cidx in 0..bs {
                        out[base + r * bs + cidx] = src[(bi * bs + r) * n + bj * bs + cidx];
                    }
                }
            }
        }
        out
    }

    /// Copy block-major tiles back to row-major.
    fn untile(src: &[f64], n: usize, bs: usize) -> Vec<f64> {
        let nb = n / bs;
        let mut out = vec![0.0; n * n];
        for bi in 0..nb {
            for bj in 0..nb {
                let base = (bi * nb + bj) * bs * bs;
                for r in 0..bs {
                    for cidx in 0..bs {
                        out[(bi * bs + r) * n + bj * bs + cidx] = src[base + r * bs + cidx];
                    }
                }
            }
        }
        out
    }
}

impl Workload for Matmul {
    fn name(&self) -> &'static str {
        "Matmul"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 8;
        while bs <= self.n {
            v.push(bs);
            bs *= 2;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0, "block size must divide n");
        let n = self.n;
        let nb = n / bs;
        let ta = Self::tile(&self.a, n, bs);
        let tb = Self::tile(&self.b, n, bs);
        let mut tc = vec![0.0; n * n];
        {
            let pa = SendPtr::new(ta.as_ptr() as *mut f64);
            let pb = SendPtr::new(tb.as_ptr() as *mut f64);
            let pc = SendPtr::new(tc.as_mut_ptr());
            rt.run(move |ctx| {
                let tile = bs * bs;
                for bi in 0..nb {
                    for bj in 0..nb {
                        for bk in 0..nb {
                            let (ca, cb, cc) = unsafe {
                                (
                                    pa.add((bi * nb + bk) * tile),
                                    pb.add((bk * nb + bj) * tile),
                                    pc.add((bi * nb + bj) * tile),
                                )
                            };
                            ctx.spawn_labeled(
                                "gemm",
                                Deps::new()
                                    .read_addr(ca.addr())
                                    .read_addr(cb.addr())
                                    .readwrite_addr(cc.addr()),
                                move |_| unsafe {
                                    let a = core::slice::from_raw_parts(ca.get(), tile);
                                    let b = core::slice::from_raw_parts(cb.get(), tile);
                                    let c = core::slice::from_raw_parts_mut(cc.get(), tile);
                                    gemm_block(c, a, b, bs);
                                },
                            );
                        }
                    }
                }
            });
        }
        self.c = Self::untile(&tc, n, bs);
        self.last_bs = bs;
        2 * (n as u64).pow(3)
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        2 * (bs as u64).pow(3)
    }

    fn verify(&self) -> Result<(), String> {
        for (i, (got, want)) in self.c.iter().zip(&self.expected).enumerate() {
            if (got - want).abs() > 1e-6 * want.abs().max(1.0) {
                return Err(format!(
                    "C[{i}] = {got}, expected {want} (bs {})",
                    self.last_bs
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn tile_untile_roundtrip() {
        let n = 8;
        let m: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        for bs in [2, 4, 8] {
            let t = Matmul::tile(&m, n, bs);
            assert_eq!(Matmul::untile(&t, n, bs), m, "bs={bs}");
        }
    }

    #[test]
    fn correct_at_multiple_granularities() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Matmul::new(1);
        for bs in [8, 16, 64] {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn correct_on_locking_deps_and_worksteal() {
        for cfg in [
            RuntimeConfig::without_waitfree_deps(),
            RuntimeConfig::openmp_llvm_like(),
        ] {
            let label = cfg.label;
            let rt = Runtime::new(cfg.workers(2));
            let mut w = Matmul::new(1);
            w.run(&rt, 16);
            w.verify().unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}
