//! miniAMR proxy — §6.1 benchmark (5): "a taskified miniAMR that mimics
//! the different patterns of Adaptive Mesh Refinement applications".
//!
//! miniAMR's defining runtime behaviour (and why the paper uses it for
//! the Figure 10/11 trace studies) is *irregularity*: the set of mesh
//! blocks — and therefore the number and size of tasks — changes every
//! refinement phase, and a single creator thread must push bursts of
//! fine-grained tasks. This proxy reproduces that: a population of
//! blocks evolves through deterministic refine/coarsen cycles; each
//! phase runs one stencil task per *active* block (inout on the block,
//! in on its ring neighbours) plus a checksum reduction.

use nanotask_core::{Deps, RedOp, Runtime, SendPtr};

use crate::Workload;
use crate::kernels::hash_f64;

/// Maximum refinement level of the proxy.
const MAX_LEVEL: u8 = 2;

/// Blocked AMR-style proxy with phase-varying task population.
pub struct MiniAmr {
    base_blocks: usize,
    phases: usize,
    /// Backing storage: every possible block slot, each `max_bs` cells.
    storage: Vec<f64>,
    max_bs: usize,
    checksum: Box<f64>,
    last_bs: usize,
}

/// Cells a block works on at `level` (refined blocks are smaller but
/// more expensive per cell — net effect: more, finer tasks).
fn cells_at(bs: usize, level: u8) -> usize {
    (bs >> level).max(8)
}

/// Deterministic refinement level of block `b` during `phase` — mimics a
/// moving refinement front.
fn level_of(b: usize, phase: usize, nblocks: usize) -> u8 {
    let front = (phase * nblocks) / 4 % nblocks;
    let dist = (b + nblocks - front) % nblocks;
    if dist < nblocks / 8 + 1 {
        MAX_LEVEL
    } else if dist < nblocks / 4 + 1 {
        1
    } else {
        0
    }
}

impl MiniAmr {
    /// `scale` multiplies block count and block size.
    pub fn new(scale: usize) -> Self {
        let base_blocks = 16 * scale.clamp(1, 16);
        let phases = 4;
        let max_bs = 256 * scale.clamp(1, 16);
        let storage: Vec<f64> = (0..base_blocks * max_bs).map(hash_f64).collect();
        Self {
            base_blocks,
            phases,
            storage,
            max_bs,
            checksum: Box::new(0.0),
            last_bs: 0,
        }
    }

    fn smooth(block: &mut [f64], level: u8) -> f64 {
        let mut sum = 0.0;
        let reps = 1 + level as usize;
        for _ in 0..reps {
            for i in 1..block.len() - 1 {
                block[i] = 0.5 * block[i] + 0.25 * (block[i - 1] + block[i + 1]);
            }
        }
        for v in block.iter() {
            sum += *v;
        }
        sum
    }

    /// Serial reference for a given block size, from the initial state.
    fn serial(&self, bs: usize) -> (Vec<f64>, f64) {
        let mut st: Vec<f64> = (0..self.base_blocks * self.max_bs).map(hash_f64).collect();
        let mut checksum = 0.0;
        for phase in 0..self.phases {
            for b in 0..self.base_blocks {
                let level = level_of(b, phase, self.base_blocks);
                let cells = cells_at(bs, level);
                let blk = &mut st[b * self.max_bs..b * self.max_bs + cells];
                checksum += Self::smooth(blk, level);
            }
        }
        (st, checksum)
    }
}

impl Workload for MiniAmr {
    fn name(&self) -> &'static str {
        "miniAMR"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 32;
        while bs <= self.max_bs {
            v.push(bs);
            bs *= 2;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(8, self.max_bs);
        // Reset storage.
        self.storage = (0..self.base_blocks * self.max_bs).map(hash_f64).collect();
        *self.checksum = 0.0;
        self.last_bs = bs;
        let nblocks = self.base_blocks;
        let phases = self.phases;
        let max_bs = self.max_bs;
        let st = SendPtr::new(self.storage.as_mut_ptr());
        let ck = SendPtr::new(&mut *self.checksum as *mut f64);
        rt.run(move |ctx| {
            for phase in 0..phases {
                for b in 0..nblocks {
                    let level = level_of(b, phase, nblocks);
                    let cells = cells_at(bs, level);
                    let blk = unsafe { st.add(b * max_bs) };
                    // Ring-neighbour reads: the AMR halo exchange.
                    let left = unsafe { st.add(((b + nblocks - 1) % nblocks) * max_bs) };
                    let right = unsafe { st.add(((b + 1) % nblocks) * max_bs) };
                    let mut deps = Deps::new().readwrite_addr(blk.addr()).reduce_addr(
                        ck.addr(),
                        8,
                        RedOp::SumF64,
                    );
                    if left.addr() != blk.addr() {
                        deps = deps.read_addr(left.addr());
                    }
                    if right.addr() != blk.addr() && right.addr() != left.addr() {
                        deps = deps.read_addr(right.addr());
                    }
                    ctx.spawn_labeled("amr_smooth", deps, move |c| unsafe {
                        let block = core::slice::from_raw_parts_mut(blk.get(), cells);
                        let s = MiniAmr::smooth(block, level);
                        *c.red_slot(&*(ck.addr() as *const f64)) += s;
                    });
                }
            }
        });
        (self.phases * nblocks * bs * 4) as u64
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        6 * bs as u64
    }

    fn verify(&self) -> Result<(), String> {
        if self.last_bs == 0 {
            return Err("not run yet".into());
        }
        // The per-block inout chains give the same per-block sequential
        // order as the serial loop, so both state and checksum match.
        let (est, ec) = self.serial(self.last_bs);
        for (i, (got, want)) in self.storage.iter().zip(&est).enumerate() {
            if (got - want).abs() > 1e-9 {
                return Err(format!("storage[{i}] = {got}, expected {want}"));
            }
        }
        let got = *self.checksum;
        if (got - ec).abs() > 1e-6 * ec.abs().max(1.0) {
            return Err(format!("checksum {got} != expected {ec}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn refinement_front_moves() {
        let l0: Vec<u8> = (0..16).map(|b| level_of(b, 0, 16)).collect();
        let l1: Vec<u8> = (0..16).map(|b| level_of(b, 1, 16)).collect();
        assert_ne!(l0, l1, "levels change between phases");
        assert!(l0.contains(&MAX_LEVEL));
        assert!(l0.contains(&0));
    }

    #[test]
    fn checksum_matches_serial_at_all_blocks() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = MiniAmr::new(1);
        for bs in [32, 64, 256] {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = MiniAmr::new(1);
        w.run(&rt, 64);
        let first = *w.checksum;
        w.run(&rt, 64);
        assert_eq!(first, *w.checksum, "same work, same checksum");
    }

    #[test]
    fn irregular_task_sizes_per_phase() {
        let w = MiniAmr::new(1);
        let _ = &w;
        let sizes: std::collections::HashSet<usize> =
            (0..16).map(|b| cells_at(256, level_of(b, 0, 16))).collect();
        assert!(sizes.len() > 1, "mixed task sizes within a phase");
    }
}
