//! miniAMR proxy — §6.1 benchmark (5): "a taskified miniAMR that mimics
//! the different patterns of Adaptive Mesh Refinement applications".
//!
//! miniAMR's defining runtime behaviour (and why the paper uses it for
//! the Figure 10/11 trace studies) is *irregularity*: the set of mesh
//! blocks — and therefore the number and size of tasks — changes every
//! refinement phase, and a single creator thread must push bursts of
//! fine-grained tasks. This proxy reproduces that structurally: a
//! moving refinement front assigns each block a level per phase, and a
//! block at level `L` is processed by `2^L` *sub-block* tasks (more,
//! finer, per-cell-more-expensive tasks in refined regions — the AMR
//! split). The task **graph shape therefore changes between phases**
//! with period 4, which makes this the workspace's phase-alternating
//! stress for the replay engine's graph cache: driven through
//! [`nanotask_replay::RunIterative`] (one iteration = one phase), each
//! distinct phase shape records once and then replays from the cache.
//!
//! Cross-phase ordering is exact: every sub-block task declares `inout`
//! on the representative address of each finest-level quarter it
//! covers, so re-partitioning between phases serializes correctly, and
//! a halo `in` on the left neighbour keeps the AMR exchange pattern in
//! the graph. A checksum is accumulated through a task reduction.

use nanotask_core::{Deps, RedOp, Runtime, SendPtr, TaskCtx};
use nanotask_replay::{ReplayReport, RunIterative};

use crate::kernels::hash_f64;
use crate::{IterativeWorkload, Workload};

/// Maximum refinement level of the proxy (level `L` → `2^L` sub-tasks).
const MAX_LEVEL: u8 = 2;

/// Finest-level quarters per block: the ordering granules every task
/// declares its coverage in.
const QUARTERS: usize = 1 << MAX_LEVEL;

/// Blocked AMR-style proxy with phase-varying task population.
pub struct MiniAmr {
    base_blocks: usize,
    phases: usize,
    /// Backing storage: every possible block slot, each `max_bs` cells.
    storage: Vec<f64>,
    max_bs: usize,
    checksum: Box<f64>,
    last_bs: usize,
}

/// Deterministic refinement level of block `b` during `phase` — mimics a
/// moving refinement front. Periodic in `phase` with period 4 (the
/// front advances by `nblocks/4` per phase).
fn level_of(b: usize, phase: usize, nblocks: usize) -> u8 {
    let front = (phase % 4) * nblocks / 4;
    let dist = (b + nblocks - front) % nblocks;
    if dist < nblocks / 8 + 1 {
        MAX_LEVEL
    } else if dist < nblocks / 4 + 1 {
        1
    } else {
        0
    }
}

impl MiniAmr {
    /// `scale` multiplies block count and block size.
    pub fn new(scale: usize) -> Self {
        let base_blocks = 16 * scale.clamp(1, 16);
        let phases = 8;
        let max_bs = 256 * scale.clamp(1, 16);
        let storage: Vec<f64> = (0..base_blocks * max_bs).map(hash_f64).collect();
        Self {
            base_blocks,
            phases,
            storage,
            max_bs,
            checksum: Box::new(0.0),
            last_bs: 0,
        }
    }

    /// Smooth one sub-block in place; returns its cell sum. Refined
    /// levels run more relaxation passes (costlier per cell).
    fn smooth(block: &mut [f64], level: u8) -> f64 {
        let mut sum = 0.0;
        let reps = 1 + level as usize;
        for _ in 0..reps {
            for i in 1..block.len() - 1 {
                block[i] = 0.5 * block[i] + 0.25 * (block[i - 1] + block[i + 1]);
            }
        }
        for v in block.iter() {
            sum += *v;
        }
        sum
    }

    /// Serial reference for a given block size, from the initial state:
    /// the exact sub-block decomposition the task version spawns, run in
    /// spawn order.
    fn serial(&self, bs: usize) -> (Vec<f64>, f64) {
        let mut st: Vec<f64> = (0..self.base_blocks * self.max_bs).map(hash_f64).collect();
        let mut checksum = 0.0;
        for phase in 0..self.phases {
            for b in 0..self.base_blocks {
                let level = level_of(b, phase, self.base_blocks);
                let subs = 1usize << level;
                let seg = bs / subs;
                for s in 0..subs {
                    let lo = b * self.max_bs + s * seg;
                    checksum += Self::smooth(&mut st[lo..lo + seg], level);
                }
            }
        }
        (st, checksum)
    }

    fn reset(&mut self, bs: usize) -> usize {
        // Round down to a whole number of quarters: sub-block segment
        // boundaries must align with the declared quarter granules, or
        // tasks of different levels could overlap cells without sharing
        // a dependency address (a cross-phase race).
        let bs = bs.clamp(QUARTERS * 8, self.max_bs) / QUARTERS * QUARTERS;
        self.storage = (0..self.base_blocks * self.max_bs).map(hash_f64).collect();
        *self.checksum = 0.0;
        self.last_bs = bs;
        bs
    }

    /// Work units reported per run.
    fn work(&self, bs: usize) -> u64 {
        (self.phases * self.base_blocks * bs * 4) as u64
    }
}

/// Spawn one refinement phase: `2^level` sub-block tasks per block, each
/// `inout` on the finest-level quarters it covers, `in` on the left
/// neighbour's halo (first task of each block), and a checksum
/// reduction. Shared between the pipelined driver ([`Workload::run`])
/// and the replay driver ([`IterativeWorkload::run_replay`]).
fn spawn_phase(
    ctx: &TaskCtx,
    st: SendPtr<f64>,
    ck: SendPtr<f64>,
    bs: usize,
    nblocks: usize,
    max_bs: usize,
    phase: usize,
) {
    let quarter = bs / QUARTERS;
    // Representative address of quarter `q` of block `b`.
    let rep = |b: usize, q: usize| unsafe { st.add(b * max_bs + q * quarter) };
    for b in 0..nblocks {
        let level = level_of(b, phase, nblocks);
        let subs = 1usize << level;
        let seg = bs / subs;
        let q_per_sub = QUARTERS / subs;
        for s in 0..subs {
            let mut deps = Deps::new().reduce_addr(ck.addr(), 8, RedOp::SumF64);
            for q in 0..q_per_sub {
                deps = deps.readwrite_addr(rep(b, s * q_per_sub + q).addr());
            }
            if s == 0 {
                // AMR halo exchange flavour: read the left neighbour.
                deps = deps.read_addr(rep((b + nblocks - 1) % nblocks, 0).addr());
            }
            let lo = unsafe { st.add(b * max_bs + s * seg) };
            ctx.spawn_labeled("amr_smooth", deps, move |c| unsafe {
                let block = core::slice::from_raw_parts_mut(lo.get(), seg);
                let sum = MiniAmr::smooth(block, level);
                *c.red_slot(&*(ck.addr() as *const f64)) += sum;
            });
        }
    }
}

impl Workload for MiniAmr {
    fn name(&self) -> &'static str {
        "miniAMR"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = QUARTERS * 8;
        while bs <= self.max_bs {
            v.push(bs);
            bs *= 2;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = self.reset(bs);
        let nblocks = self.base_blocks;
        let phases = self.phases;
        let max_bs = self.max_bs;
        let st = SendPtr::new(self.storage.as_mut_ptr());
        let ck = SendPtr::new(&mut *self.checksum as *mut f64);
        rt.run(move |ctx| {
            for phase in 0..phases {
                spawn_phase(ctx, st, ck, bs, nblocks, max_bs, phase);
            }
        });
        self.work(bs)
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        // Average over one period of the moving front: a level-L
        // sub-task processes bs/2^L cells with 1+L relaxation passes
        // (~6 ops per cell per pass).
        let mut ops = 0u64;
        let mut tasks = 0u64;
        for phase in 0..4 {
            for b in 0..self.base_blocks {
                let l = level_of(b, phase, self.base_blocks) as u64;
                let subs = 1u64 << l;
                tasks += subs;
                ops += subs * 6 * (bs as u64 >> l) * (1 + l);
            }
        }
        (ops / tasks.max(1)).max(1)
    }

    fn verify(&self) -> Result<(), String> {
        if self.last_bs == 0 {
            return Err("not run yet".into());
        }
        // Per-quarter inout chains give the same per-address sequential
        // order as the serial loop, so the state matches exactly; the
        // checksum is a float reduction (combine order varies), compared
        // with a relative tolerance.
        let (est, ec) = self.serial(self.last_bs);
        for (i, (got, want)) in self.storage.iter().zip(&est).enumerate() {
            if (got - want).abs() > 1e-9 {
                return Err(format!("storage[{i}] = {got}, expected {want}"));
            }
        }
        let got = *self.checksum;
        if (got - ec).abs() > 1e-6 * ec.abs().max(1.0) {
            return Err(format!("checksum {got} != expected {ec}"));
        }
        Ok(())
    }
}

impl IterativeWorkload for MiniAmr {
    fn iterations(&self) -> usize {
        self.phases
    }

    fn set_iterations(&mut self, iters: usize) {
        self.phases = iters.max(1);
    }

    fn run_replay(&mut self, rt: &Runtime, bs: usize) -> u64 {
        self.run_replay_report(rt, bs);
        self.work(self.last_bs)
    }

    /// Drive one run through `Runtime::run_iterative` (one iteration =
    /// one refinement phase) and hand back the full [`ReplayReport`]:
    /// with a graph cache of at least 4 the four distinct phase shapes
    /// each record once and every later phase replays from the cache.
    fn run_replay_report(&mut self, rt: &Runtime, bs: usize) -> ReplayReport {
        let bs = self.reset(bs);
        let nblocks = self.base_blocks;
        let max_bs = self.max_bs;
        let st = SendPtr::new(self.storage.as_mut_ptr());
        let ck = SendPtr::new(&mut *self.checksum as *mut f64);
        let phase = std::sync::atomic::AtomicUsize::new(0);
        rt.run_iterative(self.phases, move |ctx| {
            let p = phase.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            spawn_phase(ctx, st, ck, bs, nblocks, max_bs, p);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn refinement_front_moves_with_period_four() {
        let levels =
            |p: usize| -> Vec<u8> { (0..16).map(|b| level_of(b, p, 16)).collect::<Vec<_>>() };
        assert_ne!(levels(0), levels(1), "levels change between phases");
        assert_eq!(levels(0), levels(4), "front is periodic with period 4");
        assert!(levels(0).contains(&MAX_LEVEL));
        assert!(levels(0).contains(&0));
    }

    #[test]
    fn checksum_matches_serial_at_all_blocks() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = MiniAmr::new(1);
        for bs in [32, 64, 256] {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn non_quarter_aligned_block_size_rounds_down_and_verifies() {
        // bs must be a whole number of quarters or sub-block segments
        // would overlap cells without sharing a dependency address.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = MiniAmr::new(1);
        w.run(&rt, 50);
        assert_eq!(w.last_bs, 48, "rounded to a quarter multiple");
        w.verify().unwrap();
    }

    #[test]
    fn deterministic_state_across_runs() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = MiniAmr::new(1);
        w.run(&rt, 64);
        let first_state = w.storage.clone();
        let first_ck = *w.checksum;
        w.run(&rt, 64);
        assert_eq!(first_state, w.storage, "same work, same state");
        // The checksum is a parallel float reduction: combine order may
        // differ between runs, values agree to rounding.
        assert!((first_ck - *w.checksum).abs() <= 1e-9 * first_ck.abs().max(1.0));
    }

    #[test]
    fn task_count_alternates_between_phases() {
        let count =
            |p: usize| -> usize { (0..16).map(|b| 1usize << level_of(b, p, 16)).sum::<usize>() };
        let counts: Vec<usize> = (0..4).map(count).collect();
        assert!(
            counts.iter().any(|&c| c != counts[0]) || {
                // Even with equal totals the *placement* differs, which
                // is what the structural hash sees; require that at
                // least the level vectors differ.
                (0..16).map(|b| level_of(b, 0, 16)).collect::<Vec<_>>()
                    != (0..16).map(|b| level_of(b, 1, 16)).collect::<Vec<_>>()
            },
            "phases must differ structurally: {counts:?}"
        );
    }

    #[test]
    fn replay_matches_serial_and_uses_the_graph_cache() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = MiniAmr::new(1);
        let report = w.run_replay_report(&rt, 64);
        w.verify().unwrap_or_else(|e| panic!("replay bs=64: {e}"));
        // 8 phases cycle through 4 distinct shapes: each records once,
        // every later phase replays from the cache.
        assert_eq!(report.iterations, 8);
        assert_eq!(report.rerecords, 4, "one record per distinct phase shape");
        assert_eq!(report.replayed, 4, "the second cycle replays fully");
        assert_eq!(report.pinned_iterations, 0);
        assert!(!report.pinned_nested);
    }

    #[test]
    fn replay_single_graph_mode_rerecords_every_phase_change() {
        // The pre-cache engine: every phase change discards the graph.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(3)
                .with_replay_cache_size(1),
        );
        let mut w = MiniAmr::new(1);
        let report = w.run_replay_report(&rt, 64);
        w.verify().unwrap();
        assert_eq!(report.replayed, 0, "phases always diverge without a cache");
        assert_eq!(report.rerecords, 4);
        assert_eq!(report.diverged, 4);
    }
}
