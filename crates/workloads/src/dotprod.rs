//! Dot product — §6.1 benchmark (1): "a Dot product between two arrays
//! that uses a task reduction to aggregate the results from each block".
//!
//! The extreme fine-granularity stress: each task is a short loop and a
//! reduction-slot accumulation, so at small block sizes the runtime
//! overhead (allocation + registration + scheduling) dominates — this is
//! the benchmark where the paper's optimizations show the largest effect
//! (Figure 4, top right).

use nanotask_core::{Deps, RedOp, Runtime, SendPtr};

use crate::Workload;
use crate::kernels::{dot_block, hash_f64};

/// Blocked dot product with a task reduction.
pub struct DotProduct {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    result: Box<f64>,
    expected: f64,
}

impl DotProduct {
    /// `scale` multiplies the element count (scale 1 ≈ 16Ki elements).
    pub fn new(scale: usize) -> Self {
        let n = 1 << (14 + scale.saturating_sub(1).min(10));
        let a: Vec<f64> = (0..n).map(hash_f64).collect();
        let b: Vec<f64> = (0..n).map(|i| hash_f64(i + n)).collect();
        let expected = dot_block(&a, &b);
        Self {
            n,
            a,
            b,
            result: Box::new(0.0),
            expected,
        }
    }
}

impl Workload for DotProduct {
    fn name(&self) -> &'static str {
        "DotProduct"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 64;
        while bs <= self.n {
            v.push(bs);
            bs *= 4;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        *self.result = 0.0;
        let a = SendPtr::new(self.a.as_mut_ptr());
        let b = SendPtr::new(self.b.as_mut_ptr());
        let res = SendPtr::new(&mut *self.result as *mut f64);
        let n = self.n;
        rt.run(move |ctx| {
            let mut off = 0;
            while off < n {
                let len = bs.min(n - off);
                let (ab, bb) = unsafe { (a.add(off), b.add(off)) };
                ctx.spawn_labeled(
                    "dot",
                    Deps::new()
                        .read_addr(ab.addr())
                        .read_addr(bb.addr())
                        .reduce_addr(res.addr(), 8, RedOp::SumF64),
                    move |c| unsafe {
                        let pa = core::slice::from_raw_parts(ab.get(), len);
                        let pb = core::slice::from_raw_parts(bb.get(), len);
                        let partial = dot_block(pa, pb);
                        let slot = c.red_slot(&*(res.addr() as *const f64));
                        *slot += partial;
                    },
                );
                off += len;
            }
        });
        2 * self.n as u64
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        2 * bs as u64
    }

    fn verify(&self) -> Result<(), String> {
        let got = *self.result;
        let want = self.expected;
        if (got - want).abs() <= 1e-6 * want.abs().max(1.0) {
            Ok(())
        } else {
            Err(format!("dot product {got} != expected {want}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn correct_at_multiple_granularities() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = DotProduct::new(1);
        for bs in w.block_sizes() {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn correct_on_every_ablation() {
        for cfg in RuntimeConfig::ablations() {
            let label = cfg.label;
            let rt = Runtime::new(cfg.workers(2));
            let mut w = DotProduct::new(1);
            w.run(&rt, 256);
            w.verify().unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn ops_per_task_scales_with_block() {
        let w = DotProduct::new(1);
        assert_eq!(w.ops_per_task(128), 256);
        assert!(w.ops_per_task(1024) > w.ops_per_task(128));
    }
}
