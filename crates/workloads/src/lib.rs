//! Taskified benchmark applications — §6.1 of the paper.
//!
//! "To evaluate the task-based runtimes and check the capability of
//! scaling to more finely partitioned work, we will use the following
//! benchmarks, running constant problem sizes and varying the task
//! granularity":
//!
//! 1. [`dotprod`] — dot product with a task reduction per block.
//! 2. [`heat`] — iterative Gauss–Seidel solving the heat equation on a
//!    blocked 2-D grid, with a task reduction for the residual.
//! 3. [`hpccg`] — a taskified conjugate-gradient solver (HPCCG) with
//!    multi-dependencies and task reductions.
//! 4. [`lulesh`] — a LULESH-2.0-style proxy: multi-phase unstructured
//!    stencil with neighbour dependencies.
//! 5. [`miniamr`] — a miniAMR-style proxy mimicking adaptive mesh
//!    refinement: irregular task counts that change across phases.
//! 6. [`matmul`] — classic blocked matrix multiplication.
//! 7. [`nbody`] — blocked N-body force calculation, mimicking dynamic
//!    particle simulations.
//! 8. [`cholesky`] — blocked Cholesky factorization (potrf/trsm/syrk/gemm
//!    task graph), generally compute-bound.
//!
//! Every workload implements [`Workload`]: it runs on a configured
//! [`Runtime`] at a chosen *block size* (the granularity knob), reports
//! the work done so the harness can compute performance, estimates the
//! paper's x-axis metric (operations per task ≈ instructions per task),
//! and can verify its result against a serial reference.
//!
//! Vendor kernels (Intel MKL / ARM Performance Libraries) are replaced by
//! the hand-written blocked kernels in [`kernels`] — a documented
//! substitution: the kernels only set the per-task cost scale.

pub mod cholesky;
pub mod dotprod;
pub mod heat;
pub mod hpccg;
pub mod kernels;
pub mod lulesh;
pub mod matmul;
pub mod miniamr;
pub mod nbody;
pub mod sweep;

use nanotask_core::Runtime;

/// A benchmark application with a granularity knob.
pub trait Workload {
    /// Short name (matches the paper's figure labels).
    fn name(&self) -> &'static str;

    /// The block sizes (granularity settings) this workload supports,
    /// coarsest last. Each maps to a point on the paper's x-axis.
    fn block_sizes(&self) -> Vec<usize>;

    /// Run once on `rt` with block size `bs`; returns the work done in
    /// abstract operations (used as the numerator of performance).
    fn run(&mut self, rt: &Runtime, bs: usize) -> u64;

    /// Approximate operations per task at block size `bs` — the paper's
    /// "granularity expressed in instructions executed per task".
    fn ops_per_task(&self, bs: usize) -> u64;

    /// Check the result of the last `run` against a serial reference.
    /// Returns `Err(description)` on mismatch.
    fn verify(&self) -> Result<(), String>;
}

/// A workload whose timesteps spawn an identical — or, since the replay
/// engine grew a multi-graph cache, *cyclically phase-alternating* —
/// task graph, so it can be driven through the record & replay
/// subsystem ([`nanotask_replay::RunIterative`]): each distinct graph
/// shape is captured once and replayed with plain atomic in-degree
/// counters afterwards, eliminating per-iteration dependency-system
/// cost. `run_replay` must produce the same result `verify` expects
/// from [`Workload::run`].
pub trait IterativeWorkload: Workload {
    /// Number of timesteps/iterations one run performs.
    fn iterations(&self) -> usize;

    /// Change the iteration count (recomputes the serial reference so
    /// [`Workload::verify`] keeps working).
    fn set_iterations(&mut self, iters: usize);

    /// Run once at block size `bs` via `Runtime::run_iterative`; returns
    /// the same abstract-operation count as [`Workload::run`].
    fn run_replay(&mut self, rt: &Runtime, bs: usize) -> u64;

    /// Like [`IterativeWorkload::run_replay`], but hands back the replay
    /// engine's [`nanotask_replay::ReplayReport`] — the counters the
    /// replay harnesses (fig12/fig14/fig15) make their claims with.
    fn run_replay_report(&mut self, rt: &Runtime, bs: usize) -> nanotask_replay::ReplayReport;
}

/// All eight §6.1 workloads at a given problem scale (1 = tiny CI scale,
/// larger = closer to paper scale).
pub fn all_workloads(scale: usize) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(dotprod::DotProduct::new(scale)),
        Box::new(heat::Heat::new(scale)),
        Box::new(hpccg::Hpccg::new(scale)),
        Box::new(lulesh::Lulesh::new(scale)),
        Box::new(miniamr::MiniAmr::new(scale)),
        Box::new(matmul::Matmul::new(scale)),
        Box::new(nbody::NBody::new(scale)),
        Box::new(cholesky::Cholesky::new(scale)),
    ]
}

/// The replay-capable workloads (those with per-timestep-identical
/// graphs) at a given problem scale.
pub fn iterative_workloads(scale: usize) -> Vec<Box<dyn IterativeWorkload>> {
    vec![
        Box::new(heat::Heat::new(scale)),
        Box::new(hpccg::Hpccg::new(scale)),
        Box::new(nbody::NBody::new(scale)),
        Box::new(miniamr::MiniAmr::new(scale)),
        Box::new(cholesky::Cholesky::new(scale)),
    ]
}

/// Construct a replay-capable workload by its paper name.
pub fn iterative_workload_by_name(name: &str, scale: usize) -> Option<Box<dyn IterativeWorkload>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "heat" | "gauss-seidel" => Box::new(heat::Heat::new(scale)),
        "hpccg" => Box::new(hpccg::Hpccg::new(scale)),
        "nbody" => Box::new(nbody::NBody::new(scale)),
        "miniamr" => Box::new(miniamr::MiniAmr::new(scale)),
        "cholesky" => Box::new(cholesky::Cholesky::new(scale)),
        _ => return None,
    })
}

/// Construct a workload by its paper name.
pub fn workload_by_name(name: &str, scale: usize) -> Option<Box<dyn Workload>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "dotproduct" | "dotprod" | "dot" => Box::new(dotprod::DotProduct::new(scale)),
        "heat" | "gauss-seidel" => Box::new(heat::Heat::new(scale)),
        "hpccg" => Box::new(hpccg::Hpccg::new(scale)),
        "lulesh" => Box::new(lulesh::Lulesh::new(scale)),
        "miniamr" => Box::new(miniamr::MiniAmr::new(scale)),
        "matmul" => Box::new(matmul::Matmul::new(scale)),
        "nbody" => Box::new(nbody::NBody::new(scale)),
        "cholesky" => Box::new(cholesky::Cholesky::new(scale)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn all_workloads_constructible() {
        let ws = all_workloads(1);
        assert_eq!(ws.len(), 8);
        let names: Vec<_> = ws.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"DotProduct"));
        assert!(names.contains(&"Cholesky"));
    }

    #[test]
    fn by_name_lookup() {
        assert!(workload_by_name("matmul", 1).is_some());
        assert!(workload_by_name("MiniAMR", 1).is_some());
        assert!(workload_by_name("nope", 1).is_none());
    }

    #[test]
    fn every_workload_runs_and_verifies_smallest_scale() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        for mut w in all_workloads(1) {
            let sizes = w.block_sizes();
            assert!(!sizes.is_empty(), "{} has block sizes", w.name());
            let bs = sizes[sizes.len() / 2];
            let work = w.run(&rt, bs);
            assert!(work > 0, "{} reports work", w.name());
            assert!(w.ops_per_task(bs) > 0);
            w.verify()
                .unwrap_or_else(|e| panic!("{} verify: {e}", w.name()));
        }
    }
}
