//! LULESH proxy — §6.1 benchmark (4): "a taskified version of
//! Lulesh 2.0".
//!
//! LULESH is a Lagrangian shock-hydrodynamics proxy app; per timestep it
//! alternates element-centred and node-centred phases over an
//! unstructured mesh, with neighbour-coupled updates and a global
//! minimum reduction for the adaptive timestep. This proxy keeps exactly
//! that task structure on a blocked 1-D mesh:
//!
//! * phase 1 (`stress`): per element block, from node positions;
//! * phase 2 (`force`): per node block, reading the *neighbouring*
//!   element blocks (multi-dependencies);
//! * phase 3 (`advance`): per node block, integrating positions and
//!   feeding a **min-reduction** of the per-block stable timestep —
//!   LULESH's `dtcourant` (`RedOp::MinF64`).

use nanotask_core::{Deps, RedOp, Runtime, SendPtr};

use crate::Workload;
use crate::kernels::hash_f64;

const DT0: f64 = 1e-3;

/// Blocked LULESH-style multi-phase proxy.
pub struct Lulesh {
    n: usize,
    steps: usize,
    pos: Vec<f64>,
    stress: Vec<f64>,
    force: Vec<f64>,
    dt: Box<f64>,
    expected_pos: Vec<f64>,
    expected_dt: f64,
}

impl Lulesh {
    /// `scale` multiplies the mesh size (scale 1 ≈ 4096 nodes).
    pub fn new(scale: usize) -> Self {
        let n = 4096 * scale.clamp(1, 64);
        let steps = 2;
        let pos = Self::initial(n);
        let (expected_pos, expected_dt) = Self::serial(&pos, n, steps);
        Self {
            n,
            steps,
            pos,
            stress: vec![0.0; n],
            force: vec![0.0; n],
            dt: Box::new(f64::INFINITY),
            expected_pos,
            expected_dt,
        }
    }

    fn initial(n: usize) -> Vec<f64> {
        (0..n).map(|i| hash_f64(i) + i as f64).collect()
    }

    fn stress_of(p: f64) -> f64 {
        0.5 * p.sin() + 1.0
    }

    fn force_of(left: f64, mid: f64, right: f64) -> f64 {
        0.25 * (left - 2.0 * mid + right)
    }

    fn serial(pos0: &[f64], n: usize, steps: usize) -> (Vec<f64>, f64) {
        let mut pos = pos0.to_vec();
        let mut stress = vec![0.0; n];
        let mut force = vec![0.0; n];
        let mut dt = f64::INFINITY;
        for _ in 0..steps {
            for i in 0..n {
                stress[i] = Self::stress_of(pos[i]);
            }
            for i in 0..n {
                let l = if i > 0 { stress[i - 1] } else { stress[i] };
                let r = if i + 1 < n { stress[i + 1] } else { stress[i] };
                force[i] = Self::force_of(l, stress[i], r);
            }
            for i in 0..n {
                pos[i] += DT0 * force[i];
                let local_dt = 1.0 / (force[i].abs() + 1e-3);
                if local_dt < dt {
                    dt = local_dt;
                }
            }
        }
        (pos, dt)
    }
}

impl Workload for Lulesh {
    fn name(&self) -> &'static str {
        "Lulesh"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 64;
        while bs <= self.n {
            v.push(bs);
            bs *= 4;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        self.pos = Self::initial(self.n);
        *self.dt = f64::INFINITY;
        let n = self.n;
        let nb = n / bs;
        let steps = self.steps;
        let pos = SendPtr::new(self.pos.as_mut_ptr());
        let str_ = SendPtr::new(self.stress.as_mut_ptr());
        let frc = SendPtr::new(self.force.as_mut_ptr());
        let dt = SendPtr::new(&mut *self.dt as *mut f64);
        rt.run(move |ctx| {
            let blk = |base: SendPtr<f64>, b: usize| unsafe { base.add(b * bs) };
            for _ in 0..steps {
                // Phase 1: stress from positions (element-centred).
                for b in 0..nb {
                    let (p, s) = (blk(pos, b), blk(str_, b));
                    ctx.spawn_labeled(
                        "stress",
                        Deps::new().read_addr(p.addr()).write_addr(s.addr()),
                        move |_| unsafe {
                            for k in 0..bs {
                                *s.get().add(k) = Self::stress_of(*p.get().add(k));
                            }
                        },
                    );
                }
                // Phase 2: forces from neighbouring stress blocks.
                for b in 0..nb {
                    let f = blk(frc, b);
                    let mut deps = Deps::new()
                        .write_addr(f.addr())
                        .read_addr(blk(str_, b).addr());
                    if b > 0 {
                        deps = deps.read_addr(blk(str_, b - 1).addr());
                    }
                    if b + 1 < nb {
                        deps = deps.read_addr(blk(str_, b + 1).addr());
                    }
                    ctx.spawn_labeled("force", deps, move |_| unsafe {
                        let sall = core::slice::from_raw_parts(str_.get(), n);
                        for k in 0..bs {
                            let i = b * bs + k;
                            let l = if i > 0 { sall[i - 1] } else { sall[i] };
                            let r = if i + 1 < n { sall[i + 1] } else { sall[i] };
                            *f.get().add(k) = Self::force_of(l, sall[i], r);
                        }
                    });
                }
                // Phase 3: advance + min-reduce the stable timestep.
                for b in 0..nb {
                    let (p, f) = (blk(pos, b), blk(frc, b));
                    ctx.spawn_labeled(
                        "advance",
                        Deps::new()
                            .readwrite_addr(p.addr())
                            .read_addr(f.addr())
                            .reduce_addr(dt.addr(), 8, RedOp::MinF64),
                        move |c| unsafe {
                            let slot = c.red_slot(&*(dt.addr() as *const f64));
                            for k in 0..bs {
                                let fv = *f.get().add(k);
                                *p.get().add(k) += DT0 * fv;
                                let local = 1.0 / (fv.abs() + 1e-3);
                                if local < *slot {
                                    *slot = local;
                                }
                            }
                        },
                    );
                }
            }
        });
        (12 * self.n * self.steps) as u64
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        12 * bs as u64
    }

    fn verify(&self) -> Result<(), String> {
        for (i, (got, want)) in self.pos.iter().zip(&self.expected_pos).enumerate() {
            if (got - want).abs() > 1e-9 * want.abs().max(1.0) {
                return Err(format!("pos[{i}] = {got}, expected {want}"));
            }
        }
        let (got, want) = (*self.dt, self.expected_dt);
        if (got - want).abs() > 1e-12 {
            return Err(format!("dt {got} != expected {want}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn matches_serial_reference() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Lulesh::new(1);
        for bs in [64, 256, 1024, 4096] {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn min_reduction_produces_finite_dt() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let mut w = Lulesh::new(1);
        w.run(&rt, 256);
        assert!(w.dt.is_finite());
        assert!(*w.dt > 0.0);
    }

    #[test]
    fn correct_without_jemalloc() {
        let rt = Runtime::new(RuntimeConfig::without_jemalloc().workers(2));
        let mut w = Lulesh::new(1);
        w.run(&rt, 1024);
        w.verify().unwrap();
    }
}
