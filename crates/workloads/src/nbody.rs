//! N-body — §6.1 benchmark (7): "an NBody benchmark that mimics dynamic
//! particle system simulations".
//!
//! Blocked all-pairs force calculation: for every target block `i`, one
//! task per source block `j` accumulates forces (`inout(F[i])
//! in(P[j])` — a per-F-block chain), followed by one integration task per
//! block (`inout(P[i]) in(F[i])`). Multiple timesteps pipeline through
//! the dependency system.

use nanotask_core::{Deps, Runtime, SendPtr, TaskCtx};
use nanotask_replay::RunIterative;

use crate::kernels::{hash_f64, nbody_block_forces};
use crate::{IterativeWorkload, Workload};

const SOFTENING: f64 = 1e-3;
const DT: f64 = 1e-3;

/// Blocked all-pairs N-body simulation.
pub struct NBody {
    n: usize,
    steps: usize,
    pos: Vec<f64>,
    vel: Vec<f64>,
    force: Vec<f64>,
    expected_pos: Vec<f64>,
}

impl NBody {
    /// `scale` multiplies the particle count (scale 1 ≈ 256 particles).
    pub fn new(scale: usize) -> Self {
        let n = 256 * scale.clamp(1, 16);
        let mut me = Self {
            n,
            steps: 2,
            pos: Self::initial(n),
            vel: vec![0.0; 3 * n],
            force: vec![0.0; 3 * n],
            expected_pos: vec![],
        };
        me.recompute_reference();
        me
    }

    /// Change the timestep count (benchmarking knob).
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps.max(1);
        self.recompute_reference();
        self
    }

    /// Serial reference.
    fn recompute_reference(&mut self) {
        let n = self.n;
        let mut epos = Self::initial(n);
        let mut evel = vec![0.0; 3 * n];
        let mut ef = vec![0.0; 3 * n];
        for _ in 0..self.steps {
            ef.iter_mut().for_each(|f| *f = 0.0);
            let snapshot = epos.clone();
            nbody_block_forces(&mut ef, &snapshot, &snapshot, n, n, SOFTENING);
            for i in 0..3 * n {
                evel[i] += DT * ef[i];
                epos[i] += DT * evel[i];
            }
        }
        self.expected_pos = epos;
    }

    fn initial(n: usize) -> Vec<f64> {
        (0..3 * n).map(|i| hash_f64(i) * 10.0 - 5.0).collect()
    }
}

/// Spawn one N-body timestep: snapshot, zero+accumulate forces,
/// integrate. Shared between the pipelined driver ([`Workload::run`])
/// and the record/replay driver ([`IterativeWorkload::run_replay`]).
fn spawn_step(
    ctx: &TaskCtx,
    pos: SendPtr<f64>,
    vel: SendPtr<f64>,
    frc: SendPtr<f64>,
    snp: SendPtr<f64>,
    bs: usize,
    nb: usize,
) {
    let blk = |base: SendPtr<f64>, b: usize| unsafe { base.add(3 * b * bs) };
    // Snapshot tasks: copy pos block → snapshot block.
    for b in 0..nb {
        let (p, s) = (blk(pos, b), blk(snp, b));
        ctx.spawn_labeled(
            "snap",
            Deps::new().read_addr(p.addr()).write_addr(s.addr()),
            move |_| unsafe {
                core::ptr::copy_nonoverlapping(p.get(), s.get(), 3 * bs);
            },
        );
    }
    // Force tasks: zero then accumulate per source block.
    for i in 0..nb {
        let f = blk(frc, i);
        ctx.spawn_labeled("zero", Deps::new().write_addr(f.addr()), move |_| unsafe {
            core::ptr::write_bytes(f.get(), 0, 3 * bs);
        });
        for j in 0..nb {
            let sj = blk(snp, j);
            let si = blk(snp, i);
            // The kernel reads both the target block's positions (i) and
            // the source block's (j).
            let mut deps = Deps::new().readwrite_addr(f.addr()).read_addr(sj.addr());
            if i != j {
                deps = deps.read_addr(si.addr());
            }
            ctx.spawn_labeled("force", deps, move |_| unsafe {
                let fs = core::slice::from_raw_parts_mut(f.get(), 3 * bs);
                let pi = core::slice::from_raw_parts(si.get(), 3 * bs);
                let pj = core::slice::from_raw_parts(sj.get(), 3 * bs);
                nbody_block_forces(fs, pi, pj, bs, bs, SOFTENING);
            });
        }
    }
    // Integration tasks.
    for b in 0..nb {
        let (p, v, f) = (blk(pos, b), blk(vel, b), blk(frc, b));
        ctx.spawn_labeled(
            "integrate",
            Deps::new()
                .readwrite_addr(p.addr())
                .readwrite_addr(v.addr())
                .read_addr(f.addr()),
            move |_| unsafe {
                for k in 0..3 * bs {
                    let fv = *f.get().add(k);
                    let vp = v.get().add(k);
                    *vp += DT * fv;
                    *p.get().add(k) += DT * *vp;
                }
            },
        );
    }
}

impl Workload for NBody {
    fn name(&self) -> &'static str {
        "NBody"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 16;
        while bs <= self.n {
            v.push(bs);
            bs *= 2;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        self.pos = Self::initial(self.n);
        self.vel.iter_mut().for_each(|v| *v = 0.0);
        let n = self.n;
        let nb = n / bs;
        let steps = self.steps;
        // Double-buffer positions so force tasks read a stable snapshot.
        let mut snap = self.pos.clone();
        {
            let pos = SendPtr::new(self.pos.as_mut_ptr());
            let vel = SendPtr::new(self.vel.as_mut_ptr());
            let frc = SendPtr::new(self.force.as_mut_ptr());
            let snp = SendPtr::new(snap.as_mut_ptr());
            rt.run(move |ctx| {
                for _ in 0..steps {
                    spawn_step(ctx, pos, vel, frc, snp, bs, nb);
                }
            });
        }
        (20 * self.n as u64 * self.n as u64 * self.steps as u64).max(1)
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        20 * (bs as u64).pow(2)
    }

    fn verify(&self) -> Result<(), String> {
        for (i, (got, want)) in self.pos.iter().zip(&self.expected_pos).enumerate() {
            if (got - want).abs() > 1e-6 * want.abs().max(1.0) {
                return Err(format!("pos[{i}] = {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

impl IterativeWorkload for NBody {
    fn iterations(&self) -> usize {
        self.steps
    }

    fn set_iterations(&mut self, iters: usize) {
        self.steps = iters.max(1);
        self.recompute_reference();
    }

    fn run_replay(&mut self, rt: &Runtime, bs: usize) -> u64 {
        self.run_replay_report(rt, bs);
        (20 * self.n as u64 * self.n as u64 * self.steps as u64).max(1)
    }

    fn run_replay_report(&mut self, rt: &Runtime, bs: usize) -> nanotask_replay::ReplayReport {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        self.pos = Self::initial(self.n);
        self.vel.iter_mut().for_each(|v| *v = 0.0);
        let nb = self.n / bs;
        let mut snap = self.pos.clone();
        let pos = SendPtr::new(self.pos.as_mut_ptr());
        let vel = SendPtr::new(self.vel.as_mut_ptr());
        let frc = SendPtr::new(self.force.as_mut_ptr());
        let snp = SendPtr::new(snap.as_mut_ptr());
        rt.run_iterative(self.steps, move |ctx| {
            spawn_step(ctx, pos, vel, frc, snp, bs, nb);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn replay_matches_serial_reference() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = NBody::new(1);
        for bs in [32, 128] {
            w.run_replay(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("replay bs={bs}: {e}"));
        }
    }

    #[test]
    fn replay_with_more_steps_still_verifies() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = NBody::new(1).with_steps(4);
        w.run_replay(&rt, 64);
        w.verify().unwrap();
    }

    #[test]
    fn matches_serial_reference() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = NBody::new(1);
        for bs in [32, 64, 128, 256] {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn forces_reset_between_steps() {
        // Two runs with different granularity must agree: stale forces
        // from a previous step/run would break this.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let mut w = NBody::new(1);
        w.run(&rt, 64);
        let first = w.pos.clone();
        w.run(&rt, 128);
        for (a, b) in first.iter().zip(&w.pos) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
