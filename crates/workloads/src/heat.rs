//! Heat equation via Gauss–Seidel — §6.1 benchmark (2): "an iterative
//! Gauss-Seidel method solving the heat equation of a 2-D matrix in
//! blocks and task reductions to calculate the residual of each time
//! step".
//!
//! Each timestep spawns one task per block with
//! `inout(B[i][j]) in(B[i±1][j], B[i][j±1])`, producing the classic
//! wavefront: consecutive timesteps pipeline diagonally across the grid.
//! The squared-residual is accumulated through a task reduction.

use nanotask_core::{Deps, RedOp, Runtime, SendPtr, TaskCtx};
use nanotask_replay::RunIterative;

use crate::kernels::{gauss_seidel_block, hash_f64};
use crate::{IterativeWorkload, Workload};

/// Blocked Gauss–Seidel heat solver.
pub struct Heat {
    /// Interior size (grid is (n+2)² with fixed boundary).
    n: usize,
    steps: usize,
    grid: Vec<f64>,
    residual: Box<f64>,
    expected_grid: Vec<f64>,
    expected_residual: f64,
}

impl Heat {
    /// `scale` multiplies the grid edge (scale 1 ≈ 64 interior cells).
    pub fn new(scale: usize) -> Self {
        let n = 64 * scale.clamp(1, 16);
        let mut me = Self {
            n,
            steps: 3,
            grid: Self::initial(n),
            residual: Box::new(0.0),
            expected_grid: vec![],
            expected_residual: 0.0,
        };
        me.recompute_reference();
        me
    }

    /// Change the timestep count (benchmarking knob; more steps amortize
    /// the replay subsystem's record iteration further).
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps.max(1);
        self.recompute_reference();
        self
    }

    /// Serial reference: same sweep order as the task version's
    /// dependency order (row-major blocks, Gauss–Seidel in-place).
    fn recompute_reference(&mut self) {
        let stride = self.n + 2;
        self.expected_grid = Self::initial(self.n);
        self.expected_residual = 0.0;
        for _ in 0..self.steps {
            self.expected_residual += unsafe {
                gauss_seidel_block(
                    self.expected_grid.as_mut_ptr().add(stride + 1),
                    self.n,
                    self.n,
                    stride,
                )
            };
        }
    }

    fn initial(n: usize) -> Vec<f64> {
        let stride = n + 2;
        let mut g = vec![0.0; stride * stride];
        // Hot top boundary, noisy left boundary.
        for cell in g.iter_mut().take(stride) {
            *cell = 1.0;
        }
        for r in 0..stride {
            g[r * stride] = hash_f64(r);
        }
        g
    }
}

/// Spawn one Gauss–Seidel timestep: one task per block with
/// `inout(B[i][j]) in(neighbours) reduction(residual)`. Shared between
/// the pipelined driver ([`Workload::run`]) and the record/replay
/// driver ([`IterativeWorkload::run_replay`]).
fn spawn_timestep(
    ctx: &TaskCtx,
    g: SendPtr<f64>,
    res: SendPtr<f64>,
    bs: usize,
    nb: usize,
    stride: usize,
) {
    // Representative address of block (bi, bj): its first cell.
    let rep = |bi: usize, bj: usize| unsafe { g.add((1 + bi * bs) * stride + 1 + bj * bs) };
    for bi in 0..nb {
        for bj in 0..nb {
            let me = rep(bi, bj);
            let mut deps =
                Deps::new()
                    .readwrite_addr(me.addr())
                    .reduce_addr(res.addr(), 8, RedOp::SumF64);
            if bi > 0 {
                deps = deps.read_addr(rep(bi - 1, bj).addr());
            }
            if bi + 1 < nb {
                deps = deps.read_addr(rep(bi + 1, bj).addr());
            }
            if bj > 0 {
                deps = deps.read_addr(rep(bi, bj - 1).addr());
            }
            if bj + 1 < nb {
                deps = deps.read_addr(rep(bi, bj + 1).addr());
            }
            ctx.spawn_labeled("gs", deps, move |c| unsafe {
                let r = gauss_seidel_block(me.get(), bs, bs, stride);
                let slot = c.red_slot(&*(res.addr() as *const f64));
                *slot += r;
            });
        }
    }
}

impl Workload for Heat {
    fn name(&self) -> &'static str {
        "Heat"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 8;
        while bs <= self.n {
            v.push(bs);
            bs *= 2;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        self.grid = Self::initial(self.n);
        *self.residual = 0.0;
        let n = self.n;
        let nb = n / bs;
        let steps = self.steps;
        let stride = n + 2;
        let g = SendPtr::new(self.grid.as_mut_ptr());
        let res = SendPtr::new(&mut *self.residual as *mut f64);
        rt.run(move |ctx| {
            for _ in 0..steps {
                spawn_timestep(ctx, g, res, bs, nb, stride);
            }
        });
        // 6 flops per cell per sweep (4 adds, mul, diff) + residual.
        (8 * self.n * self.n * self.steps) as u64
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        8 * (bs as u64).pow(2)
    }

    fn verify(&self) -> Result<(), String> {
        // Gauss–Seidel with block tasks applies updates in the same
        // row-major cell order as the serial sweep (dependencies force
        // left/top blocks first), so results match tightly.
        for (i, (got, want)) in self.grid.iter().zip(&self.expected_grid).enumerate() {
            if (got - want).abs() > 1e-9 {
                return Err(format!("grid[{i}] = {got}, expected {want}"));
            }
        }
        let (got, want) = (*self.residual, self.expected_residual);
        if (got - want).abs() > 1e-9 * want.abs().max(1.0) {
            return Err(format!("residual {got} != {want}"));
        }
        Ok(())
    }
}

impl IterativeWorkload for Heat {
    fn iterations(&self) -> usize {
        self.steps
    }

    fn set_iterations(&mut self, iters: usize) {
        self.steps = iters.max(1);
        self.recompute_reference();
    }

    fn run_replay(&mut self, rt: &Runtime, bs: usize) -> u64 {
        self.run_replay_report(rt, bs);
        (8 * self.n * self.n * self.steps) as u64
    }

    fn run_replay_report(&mut self, rt: &Runtime, bs: usize) -> nanotask_replay::ReplayReport {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        self.grid = Self::initial(self.n);
        *self.residual = 0.0;
        let n = self.n;
        let nb = n / bs;
        let stride = n + 2;
        let g = SendPtr::new(self.grid.as_mut_ptr());
        let res = SendPtr::new(&mut *self.residual as *mut f64);
        // One iteration = one timestep: recorded once, replayed steps-1
        // times. Unlike `run`, timesteps do not pipeline — the win is
        // zero dependency-system work per replayed step.
        rt.run_iterative(self.steps, move |ctx| {
            spawn_timestep(ctx, g, res, bs, nb, stride);
        })
    }
}

impl Heat {
    /// Phase-alternating replay driver: timestep `t` uses block size
    /// `sizes[t % sizes.len()]`, so the spawned task graph alternates
    /// between `sizes.len()` distinct shapes — the `fig14_graph_cache`
    /// stress. Every block size still performs one full Gauss–Seidel
    /// sweep in row-major cell order, so [`Workload::verify`] holds
    /// regardless of the phase pattern. Returns the full
    /// [`nanotask_replay::ReplayReport`]: with a graph cache of at least
    /// `sizes.len()` each shape records once and all later timesteps
    /// replay; with `replay_cache_size = 1` every phase change
    /// re-records (the pre-cache engine).
    pub fn run_phased_replay(
        &mut self,
        rt: &Runtime,
        sizes: &[usize],
    ) -> nanotask_replay::ReplayReport {
        assert!(!sizes.is_empty());
        let sizes: Vec<usize> = sizes.iter().map(|&bs| bs.clamp(1, self.n)).collect();
        for &bs in &sizes {
            assert_eq!(self.n % bs, 0);
        }
        self.grid = Self::initial(self.n);
        *self.residual = 0.0;
        let n = self.n;
        let stride = n + 2;
        let g = SendPtr::new(self.grid.as_mut_ptr());
        let res = SendPtr::new(&mut *self.residual as *mut f64);
        let step = std::sync::atomic::AtomicUsize::new(0);
        rt.run_iterative(self.steps, move |ctx| {
            let t = step.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let bs = sizes[t % sizes.len()];
            spawn_timestep(ctx, g, res, bs, n / bs, stride);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn replay_matches_serial_sweep_at_all_block_sizes() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Heat::new(1);
        for bs in w.block_sizes() {
            w.run_replay(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("replay bs={bs}: {e}"));
        }
    }

    #[test]
    fn phased_replay_alternating_block_sizes_verifies_and_caches() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Heat::new(1).with_steps(8);
        let report = w.run_phased_replay(&rt, &[8, 16]);
        w.verify().unwrap_or_else(|e| panic!("phased replay: {e}"));
        // Two shapes: each records once, the other 6 timesteps replay.
        assert_eq!(report.rerecords, 2);
        assert_eq!(report.replayed, 6);
        assert_eq!(report.diverged, 1, "only the first phase flip diverges");
    }

    #[test]
    fn phased_replay_single_graph_mode_rerecords_every_flip() {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(3)
                .with_replay_cache_size(1),
        );
        let mut w = Heat::new(1).with_steps(6);
        let report = w.run_phased_replay(&rt, &[8, 16]);
        w.verify().unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.rerecords, 3);
    }

    #[test]
    fn replay_with_more_steps_still_verifies() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Heat::new(1).with_steps(7);
        w.run_replay(&rt, 16);
        w.verify().unwrap();
        // And the normal driver agrees on the same step count.
        w.run(&rt, 16);
        w.verify().unwrap();
    }

    #[test]
    fn matches_serial_sweep_at_all_block_sizes() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Heat::new(1);
        for bs in w.block_sizes() {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn residual_positive_and_decreasing_problem() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let mut w = Heat::new(1);
        w.run(&rt, 16);
        assert!(*w.residual > 0.0);
    }

    #[test]
    fn correct_with_locking_deps() {
        let rt = Runtime::new(RuntimeConfig::without_waitfree_deps().workers(2));
        let mut w = Heat::new(1);
        w.run(&rt, 32);
        w.verify().unwrap();
    }
}
