//! Heat equation via Gauss–Seidel — §6.1 benchmark (2): "an iterative
//! Gauss-Seidel method solving the heat equation of a 2-D matrix in
//! blocks and task reductions to calculate the residual of each time
//! step".
//!
//! Each timestep spawns one task per block with
//! `inout(B[i][j]) in(B[i±1][j], B[i][j±1])`, producing the classic
//! wavefront: consecutive timesteps pipeline diagonally across the grid.
//! The squared-residual is accumulated through a task reduction.

use nanotask_core::{Deps, RedOp, Runtime, SendPtr};

use crate::kernels::{gauss_seidel_block, hash_f64};
use crate::Workload;

/// Blocked Gauss–Seidel heat solver.
pub struct Heat {
    /// Interior size (grid is (n+2)² with fixed boundary).
    n: usize,
    steps: usize,
    grid: Vec<f64>,
    residual: Box<f64>,
    expected_grid: Vec<f64>,
    expected_residual: f64,
}

impl Heat {
    /// `scale` multiplies the grid edge (scale 1 ≈ 64 interior cells).
    pub fn new(scale: usize) -> Self {
        let n = 64 * scale.clamp(1, 16);
        let steps = 3;
        let grid = Self::initial(n);
        // Serial reference: same sweep order as the task version's
        // dependency order (row-major blocks, Gauss–Seidel in-place).
        let mut expected_grid = grid.clone();
        let mut expected_residual = 0.0;
        let stride = n + 2;
        for _ in 0..steps {
            expected_residual += unsafe {
                gauss_seidel_block(expected_grid.as_mut_ptr().add(stride + 1), n, n, stride)
            };
        }
        Self {
            n,
            steps,
            grid,
            residual: Box::new(0.0),
            expected_grid,
            expected_residual,
        }
    }

    fn initial(n: usize) -> Vec<f64> {
        let stride = n + 2;
        let mut g = vec![0.0; stride * stride];
        // Hot top boundary, noisy left boundary.
        for cell in g.iter_mut().take(stride) {
            *cell = 1.0;
        }
        for r in 0..stride {
            g[r * stride] = hash_f64(r);
        }
        g
    }
}

impl Workload for Heat {
    fn name(&self) -> &'static str {
        "Heat"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 8;
        while bs <= self.n {
            v.push(bs);
            bs *= 2;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        self.grid = Self::initial(self.n);
        *self.residual = 0.0;
        let n = self.n;
        let nb = n / bs;
        let steps = self.steps;
        let stride = n + 2;
        let g = SendPtr::new(self.grid.as_mut_ptr());
        let res = SendPtr::new(&mut *self.residual as *mut f64);
        rt.run(move |ctx| {
            // Representative address of block (bi, bj): its first cell.
            let rep = |bi: usize, bj: usize| unsafe {
                g.add((1 + bi * bs) * stride + 1 + bj * bs)
            };
            for _ in 0..steps {
                for bi in 0..nb {
                    for bj in 0..nb {
                        let me = rep(bi, bj);
                        let mut deps = Deps::new()
                            .readwrite_addr(me.addr())
                            .reduce_addr(res.addr(), 8, RedOp::SumF64);
                        if bi > 0 {
                            deps = deps.read_addr(rep(bi - 1, bj).addr());
                        }
                        if bi + 1 < nb {
                            deps = deps.read_addr(rep(bi + 1, bj).addr());
                        }
                        if bj > 0 {
                            deps = deps.read_addr(rep(bi, bj - 1).addr());
                        }
                        if bj + 1 < nb {
                            deps = deps.read_addr(rep(bi, bj + 1).addr());
                        }
                        ctx.spawn_labeled("gs", deps, move |c| unsafe {
                            let r = gauss_seidel_block(me.get(), bs, bs, stride);
                            let slot = c.red_slot(&*(res.addr() as *const f64));
                            *slot += r;
                        });
                    }
                }
            }
        });
        // 6 flops per cell per sweep (4 adds, mul, diff) + residual.
        (8 * self.n * self.n * self.steps) as u64
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        8 * (bs as u64).pow(2)
    }

    fn verify(&self) -> Result<(), String> {
        // Gauss–Seidel with block tasks applies updates in the same
        // row-major cell order as the serial sweep (dependencies force
        // left/top blocks first), so results match tightly.
        for (i, (got, want)) in self.grid.iter().zip(&self.expected_grid).enumerate() {
            if (got - want).abs() > 1e-9 {
                return Err(format!("grid[{i}] = {got}, expected {want}"));
            }
        }
        let (got, want) = (*self.residual, self.expected_residual);
        if (got - want).abs() > 1e-9 * want.abs().max(1.0) {
            return Err(format!("residual {got} != {want}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn matches_serial_sweep_at_all_block_sizes() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Heat::new(1);
        for bs in w.block_sizes() {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn residual_positive_and_decreasing_problem() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let mut w = Heat::new(1);
        w.run(&rt, 16);
        assert!(*w.residual > 0.0);
    }

    #[test]
    fn correct_with_locking_deps() {
        let rt = Runtime::new(RuntimeConfig::without_waitfree_deps().workers(2));
        let mut w = Heat::new(1);
        w.run(&rt, 32);
        w.verify().unwrap();
    }
}
