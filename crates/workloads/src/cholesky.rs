//! Blocked Cholesky factorization — §6.1 benchmark (8): "a blocked
//! Cholesky decomposition that is generally compute bound".
//!
//! The classic four-kernel tile algorithm (potrf / trsm / syrk / gemm)
//! whose dependency pattern — diagonal panels fanning out to off-diagonal
//! updates — is the canonical showcase of data-flow task parallelism
//! (the paper's Figure 4, bottom right).

use nanotask_core::{Deps, Runtime, SendPtr, TaskCtx};
use nanotask_replay::RunIterative;

use crate::kernels::{gemm_nt_sub_block, hash_f64, potrf_block, syrk_block, trsm_block};
use crate::{IterativeWorkload, Workload};

/// Blocked Cholesky on a tiled SPD matrix.
pub struct Cholesky {
    n: usize,
    a: Vec<f64>,
    factored: Vec<f64>,
    reference: Vec<f64>,
    last_bs: usize,
    /// Factorizations per `run_replay` call (each iteration re-factors a
    /// fresh copy of A, so every iteration spawns the identical graph).
    iters: usize,
}

impl Cholesky {
    /// `scale` multiplies the matrix dimension (scale 1 ≈ 64×64).
    pub fn new(scale: usize) -> Self {
        let n = 64 * scale.clamp(1, 16);
        // SPD matrix: A = M·Mᵀ/n + n·I.
        let m: Vec<f64> = (0..n * n).map(hash_f64).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..n {
                    s += m[i * n + k] * m[j * n + k];
                }
                let v = s / n as f64 + if i == j { n as f64 } else { 0.0 };
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        // Serial reference factorization (unblocked).
        let mut reference = a.clone();
        potrf_block(&mut reference, n).expect("reference factorization");
        Self {
            n,
            a,
            factored: vec![],
            reference,
            last_bs: 0,
            iters: 4,
        }
    }

    fn tile(src: &[f64], n: usize, bs: usize) -> Vec<f64> {
        let nb = n / bs;
        let mut out = vec![0.0; n * n];
        for bi in 0..nb {
            for bj in 0..nb {
                let base = (bi * nb + bj) * bs * bs;
                for r in 0..bs {
                    for c in 0..bs {
                        out[base + r * bs + c] = src[(bi * bs + r) * n + bj * bs + c];
                    }
                }
            }
        }
        out
    }

    fn untile(src: &[f64], n: usize, bs: usize) -> Vec<f64> {
        let nb = n / bs;
        let mut out = vec![0.0; n * n];
        for bi in 0..nb {
            for bj in 0..nb {
                let base = (bi * nb + bj) * bs * bs;
                for r in 0..bs {
                    for c in 0..bs {
                        out[(bi * bs + r) * n + bj * bs + c] = src[base + r * bs + c];
                    }
                }
            }
        }
        out
    }
}

/// Spawn the four-kernel tile factorization (potrf / trsm / syrk / gemm)
/// of the `nb × nb` tiled matrix at `pt` (tile-major layout, `bs²`
/// elements per tile). Shared by the one-shot driver ([`Workload::run`])
/// and the record/replay driver ([`IterativeWorkload::run_replay`]).
fn spawn_factorization(ctx: &TaskCtx, pt: SendPtr<f64>, bs: usize, nb: usize) {
    let tile = bs * bs;
    let at = |bi: usize, bj: usize| unsafe { pt.add((bi * nb + bj) * tile) };
    for k in 0..nb {
        let akk = at(k, k);
        ctx.spawn_labeled(
            "potrf",
            Deps::new().readwrite_addr(akk.addr()),
            move |_| unsafe {
                let blk = core::slice::from_raw_parts_mut(akk.get(), tile);
                potrf_block(blk, bs).expect("tile not positive definite");
            },
        );
        for i in (k + 1)..nb {
            let aik = at(i, k);
            ctx.spawn_labeled(
                "trsm",
                Deps::new().read_addr(akk.addr()).readwrite_addr(aik.addr()),
                move |_| unsafe {
                    let l = core::slice::from_raw_parts(akk.get(), tile);
                    let x = core::slice::from_raw_parts_mut(aik.get(), tile);
                    trsm_block(x, l, bs);
                },
            );
        }
        for i in (k + 1)..nb {
            let aik = at(i, k);
            let aii = at(i, i);
            ctx.spawn_labeled(
                "syrk",
                Deps::new().read_addr(aik.addr()).readwrite_addr(aii.addr()),
                move |_| unsafe {
                    let a = core::slice::from_raw_parts(aik.get(), tile);
                    let c = core::slice::from_raw_parts_mut(aii.get(), tile);
                    syrk_block(c, a, bs);
                },
            );
            for j in (k + 1)..i {
                let ajk = at(j, k);
                let aij = at(i, j);
                ctx.spawn_labeled(
                    "gemm",
                    Deps::new()
                        .read_addr(aik.addr())
                        .read_addr(ajk.addr())
                        .readwrite_addr(aij.addr()),
                    move |_| unsafe {
                        let a = core::slice::from_raw_parts(aik.get(), tile);
                        let b = core::slice::from_raw_parts(ajk.get(), tile);
                        let c = core::slice::from_raw_parts_mut(aij.get(), tile);
                        gemm_nt_sub_block(c, a, b, bs);
                    },
                );
            }
        }
    }
}

impl Workload for Cholesky {
    fn name(&self) -> &'static str {
        "Cholesky"
    }

    fn block_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut bs = 8;
        while bs <= self.n {
            v.push(bs);
            bs *= 2;
        }
        v
    }

    fn run(&mut self, rt: &Runtime, bs: usize) -> u64 {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        let n = self.n;
        let nb = n / bs;
        let mut t = Self::tile(&self.a, n, bs);
        {
            let pt = SendPtr::new(t.as_mut_ptr());
            rt.run(move |ctx| spawn_factorization(ctx, pt, bs, nb));
        }
        self.factored = Self::untile(&t, n, bs);
        self.last_bs = bs;
        (n as u64).pow(3) / 3
    }

    fn ops_per_task(&self, bs: usize) -> u64 {
        // gemm tiles dominate.
        2 * (bs as u64).pow(3)
    }

    fn verify(&self) -> Result<(), String> {
        // Compare the lower triangle against the serial factorization.
        let n = self.n;
        if self.factored.len() != n * n {
            return Err("not factored yet".into());
        }
        for i in 0..n {
            for j in 0..=i {
                let got = self.factored[i * n + j];
                let want = self.reference[i * n + j];
                if (got - want).abs() > 1e-6 * want.abs().max(1.0) {
                    return Err(format!(
                        "L[{i}][{j}] = {got}, expected {want} (bs {})",
                        self.last_bs
                    ));
                }
            }
        }
        Ok(())
    }
}

impl IterativeWorkload for Cholesky {
    fn iterations(&self) -> usize {
        self.iters
    }

    fn set_iterations(&mut self, iters: usize) {
        // Every iteration factors the same fresh copy of A, so the
        // serial reference needs no recomputation.
        self.iters = iters.max(1);
    }

    fn run_replay(&mut self, rt: &Runtime, bs: usize) -> u64 {
        self.run_replay_report(rt, bs);
        (self.n as u64).pow(3) / 3 * self.iters as u64
    }

    fn run_replay_report(&mut self, rt: &Runtime, bs: usize) -> nanotask_replay::ReplayReport {
        let bs = bs.clamp(1, self.n);
        assert_eq!(self.n % bs, 0);
        let n = self.n;
        let nb = n / bs;
        // Source tiles stay immutable; each iteration re-factors a fresh
        // copy in `work`, so every timestep spawns the identical graph —
        // the pattern of re-factorizing solvers (same sparsity, new
        // values each step).
        let src = Self::tile(&self.a, n, bs);
        let mut work = vec![0.0f64; n * n];
        let report = {
            let ps = SendPtr::new(src.as_ptr() as *mut f64);
            let pw = SendPtr::new(work.as_mut_ptr());
            rt.run_iterative(self.iters, move |ctx| {
                // Root-body reset: runs before any spawn of the
                // iteration, and the previous iteration's subtree has
                // completed (iterations are barriers).
                unsafe { core::ptr::copy_nonoverlapping(ps.get(), pw.get(), n * n) };
                spawn_factorization(ctx, pw, bs, nb);
            })
        };
        self.factored = Self::untile(&work, n, bs);
        self.last_bs = bs;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::RuntimeConfig;

    #[test]
    fn factorization_matches_serial_reference() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Cholesky::new(1);
        for bs in [16, 32, 64] {
            w.run(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        }
    }

    #[test]
    fn correct_without_dtlock() {
        let rt = Runtime::new(RuntimeConfig::without_dtlock().workers(2));
        let mut w = Cholesky::new(1);
        w.run(&rt, 16);
        w.verify().unwrap();
    }

    #[test]
    fn replay_matches_serial_reference() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut w = Cholesky::new(1);
        w.set_iterations(3);
        for bs in [16, 32] {
            w.run_replay(&rt, bs);
            w.verify().unwrap_or_else(|e| panic!("replay bs={bs}: {e}"));
        }
    }

    #[test]
    fn replay_with_partitioning_matches_reference() {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true),
        );
        let mut w = Cholesky::new(1);
        w.set_iterations(3);
        w.run_replay(&rt, 16);
        w.verify().unwrap();
        let rr = rt.run_report();
        assert!(
            rr.sched.targeted_tasks > 0,
            "partitioned replay routed releases: {:?}",
            rr.sched
        );
    }
}
