//! Quickstart: spawn dependent tasks, use a reduction, dump the
//! dependency graph of the paper's Figure 1 program.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nanotask::runtime_core::graph;
use nanotask::{Deps, RedOp, Runtime, RuntimeConfig, SendPtr};

fn main() {
    // A 2-worker runtime with the paper's optimized configuration:
    // wait-free dependencies + delegation scheduler + pooled allocator.
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2).graph(true));

    // --- 1. Ordered updates through inout dependencies -----------------
    let counter = Box::leak(Box::new(0u64)) as *mut u64;
    let c = SendPtr::new(counter);
    rt.run(move |ctx| {
        for step in 0..4 {
            ctx.spawn_labeled(
                "bump",
                Deps::new().readwrite_addr(c.addr()),
                move |_| unsafe {
                    // Serialized by the dependency system: no atomics needed.
                    *c.get() = *c.get() * 10 + step;
                },
            );
        }
    });
    println!("chained updates produced {:04}", unsafe { *counter });
    assert_eq!(unsafe { *counter }, 123); // 0*10+0, then 1, 12, 123

    // --- 2. A task reduction --------------------------------------------
    let sum = Box::leak(Box::new(0.0f64)) as *mut f64;
    let s = SendPtr::new(sum);
    rt.run(move |ctx| {
        for i in 1..=100u64 {
            ctx.spawn_labeled(
                "add",
                Deps::new().reduce_addr(s.addr(), 8, RedOp::SumF64),
                move |c| unsafe {
                    *c.red_slot(&*(s.addr() as *const f64)) += i as f64;
                },
            );
        }
    });
    println!("reduction sum 1..=100 = {}", unsafe { *sum });
    assert_eq!(unsafe { *sum }, 5050.0);

    // --- 3. The Figure 1 program: four in(A) siblings + nested children -
    rt.clear_graph_edges(); // keep only this program's graph
    let a = Box::leak(Box::new(0u64)) as *mut u64;
    let pa = SendPtr::new(a);
    rt.run(move |ctx| {
        for i in 0..4 {
            ctx.spawn_labeled("sibling", Deps::new().read_addr(pa.addr()), move |inner| {
                if i == 0 {
                    // Nested tasks whose accesses cross nesting levels —
                    // the OmpSs-2 extension OpenMP cannot express.
                    inner.spawn_labeled("child", Deps::new().read_addr(pa.addr()), |_| {});
                    inner.spawn_labeled("child", Deps::new().read_addr(pa.addr()), |_| {});
                }
            });
        }
    });
    println!("\ndependency graph of the Figure 1 program:");
    let edges = rt.graph_edges();
    print!("{}", graph::to_text(&edges));
    println!("\nGraphviz version:\n{}", graph::to_dot(&edges));

    let stats = rt.stats();
    println!(
        "runtime stats: created={} executed={} freed={} | allocator: {}",
        stats.tasks_created, stats.tasks_executed, stats.tasks_freed, stats.alloc
    );
}
