//! The miniAMR proxy under schedulers compared in the paper's Figure 10,
//! with live trace statistics — the irregular, creator-bound workload
//! where delegation scheduling matters most.
//!
//! ```sh
//! cargo run --release --example miniamr_sim
//! ```

use std::time::Instant;

use nanotask::runtime_core::sched::LockKind;
use nanotask::trace::timeline::Timeline;
use nanotask::workloads::Workload;
use nanotask::workloads::miniamr::MiniAmr;
use nanotask::{Platform, Runtime, RuntimeConfig, SchedKind};

fn main() {
    let workers = Platform::XEON.for_host(4).cores.clamp(2, 8);
    let scale = 1;
    let configs = [
        ("delegation (DTLock + SPSC)", SchedKind::Delegation),
        ("central PTLock", SchedKind::Central(LockKind::PtLock)),
        ("central TicketLock", SchedKind::Central(LockKind::Ticket)),
        (
            "work-stealing",
            SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal),
        ),
    ];
    println!("miniAMR proxy, {workers} workers, finest blocks — scheduler comparison\n");
    for (name, kind) in configs {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .scheduler(kind)
                .workers(workers)
                .tracing(true),
        );
        let mut w = MiniAmr::new(scale);
        let bs = w.block_sizes()[0];
        let t0 = Instant::now();
        w.run(&rt, bs);
        let dt = t0.elapsed().as_secs_f64();
        w.verify().expect("verification");
        let tl = Timeline::build(&rt.trace());
        let t = tl.total_stats();
        let acct = t.accounted_ns().max(1) as f64;
        println!(
            "{name:<28} {dt:>9.4}s  tasks={:<5} serves={:<5} starved={:>5.1}%  sched={:>5.1}%",
            t.tasks_run,
            tl.serves().len(),
            100.0 * t.idle_ns as f64 / acct,
            100.0 * t.scheduler_ns as f64 / acct,
        );
    }
    println!("\n(The paper's Figure 10 shows the PTLock variant starving most cores");
    println!(" while the DTLock owner serves tasks directly to waiting workers.)");
}
