//! Record & replay in ~40 lines: an iterative stencil-ish loop where
//! the dependency graph is captured once and replayed for every later
//! timestep.
//!
//! ```bash
//! cargo run --release --example replay_iterative
//! ```

use nanotask::trace::EventKind;
use nanotask::{Deps, RedOp, RunIterative, Runtime, RuntimeConfig, SendPtr};

fn main() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(4).tracing(true));
    const N: usize = 8;
    let mut cells = vec![1.0f64; N];
    let mut total = 0.0f64;
    let base = SendPtr::new(cells.as_mut_ptr());
    let acc = SendPtr::new(&mut total as *mut f64);

    let report = rt.run_iterative(50, move |ctx| {
        // A chain per cell pair + a reduction over all cells.
        for i in 0..N - 1 {
            let (a, b) = (unsafe { base.add(i) }, unsafe { base.add(i + 1) });
            ctx.spawn_labeled(
                "relax",
                Deps::new().read_addr(a.addr()).readwrite_addr(b.addr()),
                move |_| unsafe {
                    *b.get() = 0.5 * (*a.get() + *b.get());
                },
            );
        }
        for i in 0..N {
            let c = unsafe { base.add(i) };
            ctx.spawn_labeled(
                "sum",
                Deps::new()
                    .read_addr(c.addr())
                    .reduce_addr(acc.addr(), 8, RedOp::SumF64),
                move |t| unsafe {
                    *t.red_slot(&*(acc.addr() as *const f64)) += *c.get();
                },
            );
        }
    });

    println!(
        "iterations: {} (recorded {}, replayed {})",
        report.iterations, report.rerecords, report.replayed
    );
    println!(
        "graph: {} tasks, {} edges per iteration",
        report.tasks, report.edges
    );
    println!("accumulated cell sum over all timesteps: {total:.3}");
    assert_eq!(report.replayed, 49);
    assert!(
        (total - (50 * N) as f64).abs() < 1e-9,
        "steady state stays 1.0 per cell"
    );

    // The trace sees the phases: one record, 49 replay iterations.
    let trace = rt.trace();
    let count = |k: EventKind| trace.events().iter().filter(|e| e.kind == k).count();
    println!(
        "trace: {} record phase(s), {} replayed iteration(s), {} tasks started",
        count(EventKind::ReplayRecordBegin),
        count(EventKind::ReplayIterBegin),
        count(EventKind::TaskStart),
    );
    assert_eq!(count(EventKind::ReplayRecordBegin), 1);
    assert_eq!(count(EventKind::ReplayIterBegin), 49);
    println!("ok");
}
