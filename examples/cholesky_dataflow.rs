//! Blocked Cholesky factorization as a data-flow task graph — the
//! compute-bound workload of the paper's Figure 4, run across every
//! runtime configuration with correctness verification.
//!
//! ```sh
//! cargo run --release --example cholesky_dataflow
//! ```

use std::time::Instant;

use nanotask::workloads::Workload;
use nanotask::workloads::cholesky::Cholesky;
use nanotask::{Platform, Runtime, RuntimeConfig};

fn main() {
    let workers = Platform::XEON.for_host(4).cores.min(8);
    let scale = std::env::var("NANOTASK_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize);
    println!(
        "blocked Cholesky, scale {scale} ({} x {} matrix), {workers} workers",
        64 * scale,
        64 * scale
    );
    println!(
        "{:<32} {:>10} {:>12} {:>10}",
        "configuration", "block", "seconds", "verified"
    );

    for cfg in RuntimeConfig::ablations() {
        let label = cfg.label;
        let rt = Runtime::new(cfg.workers(workers));
        let mut w = Cholesky::new(scale);
        for bs in [16, 32, 64] {
            let t0 = Instant::now();
            w.run(&rt, bs);
            let dt = t0.elapsed().as_secs_f64();
            let ok = w.verify().is_ok();
            println!("{label:<32} {bs:>10} {dt:>12.4} {ok:>10}");
            assert!(ok, "factorization mismatch under {label}");
        }
    }

    // The task graph structure: count tasks per kernel at one block size.
    let rt = Runtime::new(RuntimeConfig::optimized().workers(workers).graph(true));
    let mut w = Cholesky::new(1);
    w.run(&rt, 16);
    let nb = 64 / 16;
    let potrf = nb;
    let trsm = nb * (nb - 1) / 2;
    let syrk = trsm;
    let gemm = nb * (nb - 1) * (nb - 2) / 6;
    println!(
        "\ntask graph at nb={nb}: {potrf} potrf + {trsm} trsm + {syrk} syrk + {gemm} gemm = {} tasks, {} dependency edges",
        potrf + trsm + syrk + gemm,
        rt.graph_edges().len()
    );
}
