//! Record a trace with the CTF-lite backend, round-trip it through the
//! on-disk format, and analyse it: per-core timeline, utilisation and
//! starvation, DTLock serve histogram, synthetic OS noise (§5 and
//! Figures 10–11 of the paper).
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use std::time::Duration;

use nanotask::trace::noise::NoiseConfig;
use nanotask::trace::timeline::Timeline;
use nanotask::trace::{EventKind, ctf};
use nanotask::{Deps, Runtime, RuntimeConfig};

fn main() {
    let workers = nanotask::Platform::host_parallelism().clamp(2, 8);
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(workers)
            .tracing(true)
            .with_noise(NoiseConfig {
                target_core: 0,
                period: Duration::from_millis(5),
                duration: Duration::from_millis(1),
                max_events: 3,
            }),
    );

    // A bursty workload: waves of tasks with gaps, so the timeline shows
    // both busy and starving phases.
    rt.run(|ctx| {
        for wave in 0..5 {
            for _ in 0..200 {
                ctx.spawn(Deps::new(), move |_| {
                    std::hint::black_box((0..2_000u64).sum::<u64>());
                });
            }
            ctx.taskwait();
            let _ = wave;
        }
    });

    let trace = rt.trace();
    println!(
        "captured {} events on {} cores",
        trace.events().len(),
        trace.ncores()
    );

    // Round-trip through the CTF-lite binary format.
    let path = std::env::temp_dir().join("nanotask-example.ntcf");
    ctf::save(&trace, &path).expect("save trace");
    let loaded = ctf::load(&path).expect("load trace");
    assert_eq!(loaded.events().len(), trace.events().len());
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "CTF-lite file: {} ({bytes} bytes, 24 B/event + header)",
        path.display()
    );

    // Event-kind census.
    let mut counts = std::collections::BTreeMap::new();
    for e in trace.events() {
        *counts.entry(format!("{:?}", e.kind)).or_insert(0u64) += 1;
    }
    println!("\nevent census:");
    for (k, n) in &counts {
        println!("  {k:<22} {n}");
    }

    // Timeline analysis.
    let tl = Timeline::build(&loaded);
    println!("\nper-core summary:");
    for core in 0..tl.ncores() {
        let s = tl.core_stats(core);
        println!(
            "  core {core}: tasks={:<5} util={:>5.1}% starved={:>5.1}% interrupted={}ns",
            s.tasks_run,
            100.0 * s.utilisation(),
            100.0 * s.starvation(),
            s.interrupted_ns
        );
    }
    let interrupts = trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::KernelInterruptBegin)
        .count();
    println!("\nsynthetic kernel interrupts injected: {interrupts}");
    println!(
        "\nASCII timeline (R=running C=creating s=scheduler .=starving !=interrupt w=taskwait):"
    );
    print!("{}", tl.render_ascii(100));
    std::fs::remove_file(&path).ok();
}
